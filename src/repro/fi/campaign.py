"""FI campaigns: whole-program and per-instruction Monte-Carlo estimation.

Both campaign styles are deterministic in (program, input, seed) and can fan
out across processes. For parallel runs, workers receive the module as text
(cheap to pickle) and rebuild/cache the decoded :class:`Program` per process,
mirroring how the paper farms LLFI runs across nodes.

Because outcomes are pure functions of (program text, input, fault model,
trial plan), both entry points also consult the content-addressed campaign
cache (:mod:`repro.cache`) when one is active: a hit skips profiling,
checkpoint recording, and every trial, returning a bit-identical result; a
miss runs as usual and writes back. Pass ``cache=False`` to opt a single
call out, or an explicit :class:`~repro.cache.CampaignCache` to override
the installed one.

Pooled dispatch is *supervised* (:mod:`repro.util.supervisor`): crashed,
hung, or raising workers are retried with backoff on a respawned pool, so a
host-side infrastructure fault no longer aborts a campaign. A campaign
either returns the complete, bit-identical outcome set or raises a typed
:class:`~repro.errors.HarnessError`; partial results are never returned and
never published to the cache.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.cache.active import active_cache
from repro.cache.keys import per_instruction_key, whole_program_key
from repro.fi.faultmodel import (
    FaultSite,
    injectable_iids,
    sample_fault_sites,
    sample_per_instruction_sites,
)
from repro.fi.injector import inject_one, inject_one_resumed
from repro.fi.outcome import Outcome, OutcomeCounts, classify_run
from repro.fi.stats import wilson_interval
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.obs.core import current as _obs_current, install_worker
from repro.obs.progress import progress_scope
from repro.obs.spans import span as _span
from repro.util.parallel import parallel_map, resolve_workers
from repro.util.rng import RngStream
from repro.vm.batch import (
    resolve_batch_size,
    resolve_engine,
    run_trials_lockstep,
)
from repro.vm.checkpoint import CheckpointStore, record_checkpoints
from repro.vm.interpreter import Program
from repro.vm.profiler import DynamicProfile, profile_run

__all__ = [
    "CampaignResult",
    "PerInstructionResult",
    "HybridResult",
    "run_campaign",
    "run_per_instruction_campaign",
    "run_model_guided_campaign",
    "per_detector_detection",
]


@dataclass
class CampaignResult:
    """Whole-program campaign outcome (the paper's 1000-fault campaigns)."""

    counts: OutcomeCounts
    #: (iid, outcome) per injected fault — feeds §IV's which-instruction-
    #: caused-this-SDC root-cause analysis.
    per_fault: list[tuple[int, Outcome]] = field(default_factory=list)
    trials: int = 0

    @property
    def sdc_probability(self) -> float:
        return self.counts.sdc_probability

    def sdc_confidence(self, confidence: float = 0.95) -> tuple[float, float]:
        return wilson_interval(
            self.counts.counts[Outcome.SDC], self.trials, confidence
        )

    def sdc_iids(self) -> set[int]:
        """Static instructions that produced at least one SDC."""
        return {iid for iid, o in self.per_fault if o is Outcome.SDC}


def per_detector_detection(
    result: "CampaignResult", protected
) -> dict[str, tuple[int, int]]:
    """Measured detection per detector kind on a protected-module campaign.

    ``protected`` is the :class:`repro.detectors.ProtectedModule` the
    campaign ran on. Each recorded fault site (a protected-module iid) is
    mapped back to its original instruction via ``origin_of``; faults
    landing on instructions a detector guards are credited to that
    detector's kind. Returns ``kind -> (detected, faults)`` — the measured
    per-detector detection rates the zoo's coverage estimators predict a
    priori. Faults on unguarded instructions aggregate under ``"none"``.
    """
    per_kind: dict[str, tuple[int, int]] = {}
    detectors = getattr(protected, "detectors", {}) or {
        iid: "dup" for iid in protected.protected_iids
    }
    for new_iid, outcome in result.per_fault:
        orig = protected.origin_of(new_iid)
        kind = detectors.get(orig, "none") if orig is not None else "none"
        det, tot = per_kind.get(kind, (0, 0))
        per_kind[kind] = (
            det + (1 if outcome is Outcome.DETECTED else 0),
            tot + 1,
        )
    return per_kind


@dataclass
class PerInstructionResult:
    """Per-instruction campaign outcome (100 faults/instruction style)."""

    per_iid: dict[int, OutcomeCounts]
    profile: DynamicProfile
    trials_per_instruction: int

    def sdc_probability(self, iid: int) -> float:
        """SDC probability of one static instruction under this input.

        Instructions that never executed have probability 0 (no dynamic
        instance to corrupt) — the same convention the paper applies.
        """
        counts = self.per_iid.get(iid)
        return counts.sdc_probability if counts else 0.0

    def sdc_probabilities(self) -> dict[int, float]:
        return {iid: c.sdc_probability for iid, c in self.per_iid.items()}


# ---------------------------------------------------------------------------
# Parallel worker machinery. Workers rebuild the Program from module text and
# cache it per process keyed by identity of the text object's hash. Checkpoint
# campaigns additionally seed each worker with the golden CheckpointStore and
# trial context once, via the pool initializer, so per-batch payloads stay
# small (just the fault tuples).
#
# Telemetry reducer: when the parent has an active obs session, workers
# install a metrics-only telemetry (pid-guarded, so a forked child never
# touches the parent's trace file) and return a drained metrics delta with
# every batch; the parent merges the deltas and emits one ``campaign.batch``
# record per batch as results stream back. Deterministic counters therefore
# match the serial path exactly.
# ---------------------------------------------------------------------------

_worker_cache: dict[int, Program] = {}
_ckpt_worker_ctx: dict = {}


def _get_program(module_text: str) -> Program:
    key = hash(module_text)
    prog = _worker_cache.get(key)
    if prog is None:
        prog = Program(parse_module(module_text))
        _worker_cache.clear()  # one campaign at a time; avoid unbounded growth
        _worker_cache[key] = prog
    return prog


def _ensure_worker_obs(enabled: bool, span_root: str | None = None) -> bool:
    """Install (once) a metrics-only telemetry in this worker process.

    Returns whether a *worker* telemetry is collecting — ``False`` both when
    telemetry is off and when the batch runs in-process in the parent, whose
    own session then counts the trials directly (no double accounting).
    ``span_root`` re-pins the parent span id each batch so worker span
    subtrees attach under the currently dispatching campaign's span.
    """
    if not enabled:
        return False
    t = _obs_current()
    if t is None:
        install_worker(span_root)
        return True
    if t.is_worker:
        t.span_root = span_root
    return t.is_worker


def _batch_info(n_trials: int, t0: float, collecting: bool) -> dict | None:
    """Per-batch telemetry payload shipped back to the parent."""
    if not collecting:
        return None
    t = _obs_current()
    collecting = t is not None and t.is_worker
    return {
        "trials": n_trials,
        "seconds": time.perf_counter() - t0,
        "pid": os.getpid(),
        "metrics": t.metrics.drain() if collecting else None,
        "spans": t.drain_spans() if collecting else None,
    }


def _batch_info_serial(n_trials: int, t0: float) -> dict:
    """Batch payload for the in-process serial path (no metrics delta —
    the parent session already counted the trials directly)."""
    return {
        "trials": n_trials,
        "seconds": time.perf_counter() - t0,
        "pid": os.getpid(),
        "metrics": None,
    }


def _init_ckpt_worker(
    module_text: str,
    store: CheckpointStore,
    golden_output: list,
    golden_steps: int,
    args,
    bindings,
    rel_tol: float,
    abs_tol: float,
    obs_enabled: bool = False,
    span_root: str | None = None,
) -> None:
    """Per-process initializer: decode the program and pin the trial context."""
    _ckpt_worker_ctx.clear()
    _ckpt_worker_ctx.update(
        program=_get_program(module_text),
        store=store,
        golden_output=golden_output,
        golden_steps=golden_steps,
        args=args,
        bindings=bindings,
        rel_tol=rel_tol,
        abs_tol=abs_tol,
        obs=obs_enabled,
        span_root=span_root,
    )


def _inject_batch_resumed(batch):
    """Worker entry: checkpoint-resumed trials → ((pos, iid, outcome)…, info)."""
    ctx = _ckpt_worker_ctx
    collecting = _ensure_worker_obs(ctx.get("obs", False), ctx.get("span_root"))
    t0 = time.perf_counter()
    prog = ctx["program"]
    store = ctx["store"]
    out: list[tuple[int, int, str]] = []
    with _span("chunk", {"trials": len(batch)}, infra=True):
        for pos, iid, instance, bit, snap_index in batch:
            o = inject_one_resumed(
                prog,
                FaultSite(iid, instance, bit),
                store,
                ctx["golden_output"],
                ctx["golden_steps"],
                args=ctx["args"],
                bindings=ctx["bindings"],
                rel_tol=ctx["rel_tol"],
                abs_tol=ctx["abs_tol"],
                snapshot_index=snap_index,
            )
            out.append((pos, iid, o.value))
    return out, _batch_info(len(out), t0, collecting)


def _inject_batch(payload):
    """Worker entry: cold trials → ((iid, outcome) pairs, telemetry info)."""
    (
        module_text,
        args,
        bindings,
        sites,
        golden_output,
        golden_steps,
        rel_tol,
        abs_tol,
        obs_enabled,
        span_root,
    ) = payload
    collecting = _ensure_worker_obs(obs_enabled, span_root)
    t0 = time.perf_counter()
    prog = _get_program(module_text)
    out: list[tuple[int, str]] = []
    with _span("chunk", {"trials": len(sites)}, infra=True):
        for iid, instance, bit in sites:
            o = inject_one(
                prog,
                FaultSite(iid, instance, bit),
                golden_output,
                golden_steps,
                args=args,
                bindings=bindings,
                rel_tol=rel_tol,
                abs_tol=abs_tol,
            )
            out.append((iid, o.value))
    return out, _batch_info(len(out), t0, collecting)


def _init_lockstep_worker(
    module_text: str,
    store: CheckpointStore | None,
    golden_output: list,
    golden_steps: int,
    args,
    bindings,
    rel_tol: float,
    abs_tol: float,
    obs_enabled: bool = False,
    span_root: str | None = None,
) -> None:
    """Per-process initializer for pooled lockstep chunks."""
    _ckpt_worker_ctx.clear()
    _ckpt_worker_ctx.update(
        program=_get_program(module_text),
        store=store,
        golden_output=golden_output,
        golden_steps=golden_steps,
        args=args,
        bindings=bindings,
        rel_tol=rel_tol,
        abs_tol=abs_tol,
        obs=obs_enabled,
        span_root=span_root,
    )


def _run_chunk_lockstep(
    program: Program,
    chunk: list,
    store: CheckpointStore | None,
    golden_output: list,
    golden_steps: int,
    args,
    bindings,
    rel_tol: float,
    abs_tol: float,
) -> list[tuple[int, int, str]]:
    """One lockstep batch: ``chunk`` rows → ``(pos, iid, outcome)`` rows.

    The chunk is pre-sorted by snapshot index, so every fault in it lies
    after the chunk-minimum snapshot — the whole batch resumes from that
    one snapshot (cold when -1/no store) with the later snapshots as
    convergence oracles for detached rows.
    """
    faults = [FaultSite(iid, inst, bit).to_spec()
              for _pos, iid, inst, bit, _si in chunk]
    snap_index = chunk[0][4]
    snapshot = convergence = None
    if store is not None:
        if snap_index >= 0:
            snapshot = store.snapshots[snap_index]
        convergence = store.convergence_from(snap_index)
    with _span("chunk", {"trials": len(chunk)}, infra=True):
        results, _stats = run_trials_lockstep(
            program,
            faults,
            args=args,
            bindings=bindings,
            golden_output=golden_output,
            snapshot=snapshot,
            convergence=convergence,
            step_limit=golden_steps * 8 + 10_000,
        )
    out = []
    for (pos, iid, _inst, _bit, _si), (r_out, trap) in zip(chunk, results):
        o = classify_run(golden_output, r_out, trap, rel_tol, abs_tol)
        out.append((pos, iid, o.value))
    return out


def _inject_chunk_lockstep(chunk):
    """Worker entry: one lockstep batch → ((pos, iid, outcome)…, info)."""
    ctx = _ckpt_worker_ctx
    collecting = _ensure_worker_obs(ctx.get("obs", False), ctx.get("span_root"))
    t0 = time.perf_counter()
    out = _run_chunk_lockstep(
        ctx["program"], chunk, ctx["store"], ctx["golden_output"],
        ctx["golden_steps"], ctx["args"], ctx["bindings"], ctx["rel_tol"],
        ctx["abs_tol"],
    )
    return out, _batch_info(len(out), t0, collecting)


def _merge_batch_info(t, cid: str | None, info: dict | None, mode: str) -> None:
    """Parent side of the reducer: fold one batch's telemetry into the run."""
    if t is None or info is None:
        return
    if info["metrics"]:
        t.metrics.merge(info["metrics"])
    for rec in info.get("spans") or ():
        # Shipped worker spans re-home under the parent's run id; their
        # span/parent ids (``w{pid}-{n}``) are unique across the whole run.
        rec["run"] = t.run_id
        t.sink.write(rec)
    secs = info["seconds"]
    t.observe("fi.batch_seconds", secs)
    rate = info["trials"] / secs if secs > 0 else 0.0
    t.observe("fi.batch_trials_per_s", rate)
    t.emit(
        "campaign.batch",
        {
            "trials": info["trials"],
            "seconds": secs,
            "trials_per_s": rate,
            "pid": info["pid"],
            "mode": mode,
        },
        campaign=cid,
    )


def _note_campaign(
    t, cid: str | None, label: str, counts: OutcomeCounts, trials: int,
    seconds: float,
) -> None:
    """Fold a finished campaign into counters and emit ``campaign.end``."""
    outcomes = {
        o.value: n for o, n in counts.counts.items() if n
    }
    t.count("fi.campaigns")
    t.count("fi.trials", trials)
    for name, n in outcomes.items():
        t.count(f"fi.outcome.{name}", n)
    t.emit(
        "campaign.end",
        {
            "label": label,
            "trials": trials,
            "outcomes": outcomes,
            "seconds": seconds,
            "trials_per_s": trials / seconds if seconds > 0 else 0.0,
        },
        campaign=cid,
    )


def _run_sites(
    program: Program,
    sites: list[FaultSite],
    golden_output: list,
    golden_steps: int,
    args,
    bindings,
    rel_tol: float,
    abs_tol: float,
    workers: int,
    obs_label: str = "fi",
    obs_cid: str | None = None,
    max_retries: int | None = None,
    task_timeout: float | None = None,
    pool_factory=None,
) -> list[tuple[int, Outcome]]:
    """Execute a list of fault sites serially or across processes."""
    t = _obs_current()
    if pool_factory is None and (workers <= 1 or len(sites) < 32):
        t0 = time.perf_counter()
        out = []
        with progress_scope(
            t.progress_for(obs_label, len(sites)) if t is not None else None
        ) as rep, _span("chunk", {"trials": len(sites)}, infra=True):
            for s in sites:
                out.append(
                    (
                        s.iid,
                        inject_one(
                            program,
                            s,
                            golden_output,
                            golden_steps,
                            args=args,
                            bindings=bindings,
                            rel_tol=rel_tol,
                            abs_tol=abs_tol,
                        ),
                    )
                )
                if rep is not None:
                    rep.update(1)
        if t is not None:
            _merge_batch_info(
                t, obs_cid,
                _batch_info_serial(len(sites), t0), "serial",
            )
        return out
    workers = max(1, workers)
    module_text = print_module(program.module)
    raw_sites = [(s.iid, s.instance, s.bit) for s in sites]
    chunk = max(8, len(raw_sites) // (workers * 4))
    span_root = t.current_span() if t is not None else None
    batches = [
        (
            module_text,
            args,
            bindings,
            raw_sites[i : i + chunk],
            golden_output,
            golden_steps,
            rel_tol,
            abs_tol,
            t is not None,
            span_root,
        )
        for i in range(0, len(raw_sites), chunk)
    ]
    rep = t.progress_for(obs_label, len(sites)) if t is not None else None

    def on_result(res) -> None:
        rows, info = res
        _merge_batch_info(t, obs_cid, info, "worker")
        if rep is not None:
            rep.update(len(rows))

    with progress_scope(rep):
        results = parallel_map(
            _inject_batch, batches, workers=workers, on_result=on_result,
            max_retries=max_retries, task_timeout=task_timeout,
            pool_factory=pool_factory,
        )
    return [(iid, Outcome(o)) for batch, _ in results for iid, o in batch]


def _run_sites_checkpointed(
    program: Program,
    sites: list[FaultSite],
    store: CheckpointStore,
    golden_output: list,
    golden_steps: int,
    args,
    bindings,
    rel_tol: float,
    abs_tol: float,
    workers: int,
    obs_label: str = "fi",
    obs_cid: str | None = None,
    max_retries: int | None = None,
    task_timeout: float | None = None,
    pool_factory=None,
) -> list[tuple[int, Outcome]]:
    """Checkpoint-resume scheduler: sort trials by injection point, resume
    each from the nearest preceding golden snapshot, batch across workers.

    Results are reassembled in the original sampling order, so ``per_fault``
    (and therefore every downstream number) is independent of the schedule —
    identical to the cold serial path for the same seed.
    """
    t = _obs_current()
    snap_index = [store.snapshot_index_for(s.iid, s.instance) for s in sites]
    # Trials sharing a snapshot run back-to-back (restore locality), ordered
    # by instance within it so execution sweeps the golden timeline once.
    order = sorted(
        range(len(sites)), key=lambda k: (snap_index[k], sites[k].instance)
    )
    results: list = [None] * len(sites)
    if pool_factory is None and (workers <= 1 or len(sites) < 32):
        t0 = time.perf_counter()
        with progress_scope(
            t.progress_for(obs_label, len(sites)) if t is not None else None
        ) as rep, _span("chunk", {"trials": len(sites)}, infra=True):
            for k in order:
                s = sites[k]
                results[k] = (
                    s.iid,
                    inject_one_resumed(
                        program,
                        s,
                        store,
                        golden_output,
                        golden_steps,
                        args=args,
                        bindings=bindings,
                        rel_tol=rel_tol,
                        abs_tol=abs_tol,
                        snapshot_index=snap_index[k],
                    ),
                )
                if rep is not None:
                    rep.update(1)
        if t is not None:
            _merge_batch_info(
                t, obs_cid, _batch_info_serial(len(sites), t0), "serial"
            )
        return results
    workers = max(1, workers)
    module_text = print_module(program.module)
    raw = [
        (k, sites[k].iid, sites[k].instance, sites[k].bit, snap_index[k])
        for k in order
    ]
    chunk = max(8, len(raw) // (workers * 4))
    batches = [raw[i : i + chunk] for i in range(0, len(raw), chunk)]
    init_args = (
        module_text, store, golden_output, golden_steps, args, bindings,
        rel_tol, abs_tol, t is not None,
        t.current_span() if t is not None else None,
    )
    rep = t.progress_for(obs_label, len(sites)) if t is not None else None

    def on_result(res) -> None:
        rows, info = res
        _merge_batch_info(t, obs_cid, info, "worker")
        if rep is not None:
            rep.update(len(rows))

    with progress_scope(rep):
        out = parallel_map(
            _inject_batch_resumed,
            batches,
            workers=workers,
            initializer=_init_ckpt_worker,
            initargs=init_args,
            on_result=on_result,
            max_retries=max_retries,
            task_timeout=task_timeout,
            pool_factory=pool_factory,
        )
    for batch, _ in out:
        for pos, iid, o in batch:
            results[pos] = (iid, Outcome(o))
    return results


def _run_sites_batch(
    program: Program,
    sites: list[FaultSite],
    store: CheckpointStore | None,
    golden_output: list,
    golden_steps: int,
    args,
    bindings,
    rel_tol: float,
    abs_tol: float,
    workers: int,
    batch_size: int,
    obs_label: str = "fi",
    obs_cid: str | None = None,
    max_retries: int | None = None,
    task_timeout: float | None = None,
    pool_factory=None,
) -> list[tuple[int, Outcome]]:
    """Lockstep-batch scheduler: vectorize trials ``batch_size`` at a time.

    Sites are sorted by (snapshot index, instance) and chunked; each chunk
    becomes one :func:`~repro.vm.batch.run_trials_lockstep` call seeded
    from the chunk-minimum snapshot (sorting makes chunks span few
    checkpoint segments, so the shared mirror replay stays short). Chunks
    are independent, so the pooled path farms whole chunks to supervised
    workers; results reassemble in sampling order either way, keeping
    outcomes byte-identical across engines and worker counts.
    """
    t = _obs_current()
    if store is not None:
        snap_index = [
            store.snapshot_index_for(s.iid, s.instance) for s in sites
        ]
    else:
        snap_index = [-1] * len(sites)
    order = sorted(
        range(len(sites)), key=lambda k: (snap_index[k], sites[k].instance)
    )
    raw = [
        (k, sites[k].iid, sites[k].instance, sites[k].bit, snap_index[k])
        for k in order
    ]
    chunks = [raw[i : i + batch_size] for i in range(0, len(raw), batch_size)]
    results: list = [None] * len(sites)
    if pool_factory is None and (workers <= 1 or len(chunks) < 2):
        t0 = time.perf_counter()
        with progress_scope(
            t.progress_for(obs_label, len(sites)) if t is not None else None
        ) as rep:
            for chunk in chunks:
                rows = _run_chunk_lockstep(
                    program, chunk, store, golden_output, golden_steps,
                    args, bindings, rel_tol, abs_tol,
                )
                for pos, iid, o in rows:
                    results[pos] = (iid, Outcome(o))
                if rep is not None:
                    rep.update(len(rows))
        if t is not None:
            _merge_batch_info(
                t, obs_cid, _batch_info_serial(len(sites), t0), "serial"
            )
        return results
    module_text = print_module(program.module)
    init_args = (
        module_text, store, golden_output, golden_steps, args, bindings,
        rel_tol, abs_tol, t is not None,
        t.current_span() if t is not None else None,
    )
    rep = t.progress_for(obs_label, len(sites)) if t is not None else None

    def on_result(res) -> None:
        rows, info = res
        _merge_batch_info(t, obs_cid, info, "worker")
        if rep is not None:
            rep.update(len(rows))

    with progress_scope(rep):
        out = parallel_map(
            _inject_chunk_lockstep,
            chunks,
            workers=max(1, workers),
            initializer=_init_lockstep_worker,
            initargs=init_args,
            on_result=on_result,
            max_retries=max_retries,
            task_timeout=task_timeout,
            pool_factory=pool_factory,
        )
    for rows, _info in out:
        for pos, iid, o in rows:
            results[pos] = (iid, Outcome(o))
    return results


def _resolve_store(
    program: Program,
    args,
    bindings,
    profile: DynamicProfile,
    checkpoint_interval,
    checkpoints: CheckpointStore | None,
) -> CheckpointStore | None:
    """Normalize the checkpointing request of a campaign entry point.

    Precedence: an explicit pre-recorded ``checkpoints`` store wins;
    otherwise ``checkpoint_interval`` selects recording (``"auto"`` applies
    :func:`~repro.vm.checkpoint.auto_interval` to the golden step count, a
    positive int is taken literally, ``None``/``0`` keeps the cold path).
    """
    if checkpoints is not None:
        return checkpoints
    if checkpoint_interval in (None, 0):
        return None
    if checkpoint_interval == "auto":
        interval = None
    else:
        interval = int(checkpoint_interval)
    return record_checkpoints(
        program,
        args=args,
        bindings=bindings,
        interval=interval,
        steps_hint=profile.steps,
    )


def _dispatch_sites(
    program: Program,
    sites: list[FaultSite],
    store: CheckpointStore | None,
    profile: DynamicProfile,
    args,
    bindings,
    rel_tol: float,
    abs_tol: float,
    workers: int | None,
    obs_label: str = "fi",
    obs_cid: str | None = None,
    max_retries: int | None = None,
    task_timeout: float | None = None,
    engine: str | None = None,
    batch_size: int | None = None,
    transport: str | None = None,
) -> list[tuple[int, Outcome]]:
    """Route a site list to the scalar (cold/resumed) or batch executor.

    ``engine``/``batch_size`` default through :func:`resolve_engine` /
    :func:`resolve_batch_size` (explicit > ``engine_scope`` >
    ``REPRO_ENGINE``/``REPRO_BATCH_SIZE`` > scalar). ``transport`` selects
    the dispatch fabric the same way (explicit > ``fabric_scope`` >
    ``REPRO_FABRIC_TRANSPORT`` > ``local``): anything but ``local`` swaps
    the process pool for transport-backed adapters
    (:mod:`repro.fabric.harness`) behind the same supervisor. Like the
    engine and the worker count, the transport is an execution strategy,
    never part of a cache key: every combination produces bit-identical
    outcome lists.
    """
    from repro.fabric.harness import resolve_fabric

    workers = resolve_workers(workers)
    _kind, pool_factory = resolve_fabric(transport)
    if resolve_engine(engine) == "batch":
        return _run_sites_batch(
            program, sites, store, profile.output, profile.steps, args,
            bindings, rel_tol, abs_tol, workers, resolve_batch_size(batch_size),
            obs_label, obs_cid, max_retries, task_timeout,
            pool_factory=pool_factory,
        )
    if store is None:
        return _run_sites(
            program, sites, profile.output, profile.steps, args, bindings,
            rel_tol, abs_tol, workers, obs_label, obs_cid,
            max_retries, task_timeout, pool_factory=pool_factory,
        )
    return _run_sites_checkpointed(
        program, sites, store, profile.output, profile.steps, args, bindings,
        rel_tol, abs_tol, workers, obs_label, obs_cid,
        max_retries, task_timeout, pool_factory=pool_factory,
    )


# ---------------------------------------------------------------------------
# Campaign cache adapters: payload encode/decode around the entry points.
# Lookup and write-back happen in the parent, around the whole campaign, so
# workers never touch the store and caching composes freely with pooling and
# checkpoint-resume. Decoders are defensive: any malformed payload reads as a
# miss (the campaign recomputes), never an exception or a wrong result.
# ---------------------------------------------------------------------------


def _cache_for(cache):
    """Resolve the ``cache`` argument of an entry point to a store or None.

    ``None`` (the default) defers to the installed/ambient cache,
    ``False`` disables caching for this call, and an explicit
    :class:`~repro.cache.CampaignCache` is used as given.
    """
    if cache is False:
        return None
    if cache is None:
        return active_cache()
    return cache


def _note_cache_hit(label: str, key: str, trials: int) -> None:
    t = _obs_current()
    if t is not None:
        t.emit("cache.hit", {"label": label, "key": key, "trials": trials})


def _encode_campaign(result: CampaignResult) -> dict:
    return {
        "kind": "whole-program",
        "trials": result.trials,
        "per_fault": [[iid, o.value] for iid, o in result.per_fault],
    }


def _decode_campaign(payload: dict | None) -> CampaignResult | None:
    if not isinstance(payload, dict) or payload.get("kind") != "whole-program":
        return None
    try:
        per_fault = [
            (int(iid), Outcome(o)) for iid, o in payload["per_fault"]
        ]
        trials = int(payload["trials"])
    except (KeyError, TypeError, ValueError):
        return None
    if trials != len(per_fault):
        return None
    counts = OutcomeCounts()
    for _, o in per_fault:
        counts.record(o)
    return CampaignResult(counts=counts, per_fault=per_fault, trials=trials)


def _encode_per_instruction(result: PerInstructionResult) -> dict:
    return {
        "kind": "per-instruction",
        "trials_per_instruction": result.trials_per_instruction,
        "per_iid": [
            [iid, {o.value: n for o, n in c.counts.items() if n}]
            for iid, c in result.per_iid.items()
        ],
    }


def _decode_per_instruction(
    payload: dict | None, profile: DynamicProfile
) -> PerInstructionResult | None:
    if not isinstance(payload, dict) or payload.get("kind") != "per-instruction":
        return None
    try:
        per_iid: dict[int, OutcomeCounts] = {}
        for iid, tally in payload["per_iid"]:
            counts = OutcomeCounts()
            for name, n in tally.items():
                counts.counts[Outcome(name)] = int(n)
            per_iid[int(iid)] = counts
        trials = int(payload["trials_per_instruction"])
    except (KeyError, TypeError, ValueError):
        return None
    return PerInstructionResult(
        per_iid=per_iid, profile=profile, trials_per_instruction=trials
    )


# ---------------------------------------------------------------------------
# Public campaign entry points
# ---------------------------------------------------------------------------


def run_campaign(
    program: Program,
    n_faults: int,
    seed: int,
    args: list | None = None,
    bindings: dict[str, list] | None = None,
    rel_tol: float = 0.0,
    abs_tol: float = 0.0,
    workers: int | None = 0,
    profile: DynamicProfile | None = None,
    checkpoint_interval: int | str | None = None,
    checkpoints: CheckpointStore | None = None,
    cache=None,
    max_retries: int | None = None,
    task_timeout: float | None = None,
    engine: str | None = None,
    batch_size: int | None = None,
    transport: str | None = None,
) -> CampaignResult:
    """Whole-program campaign: ``n_faults`` uniform dynamic-instance flips.

    Pass a pre-computed golden ``profile`` to skip the profiling run (the
    pipelines reuse one profile across many campaigns on the same input).
    ``checkpoint_interval`` (``"auto"`` or a step count) turns on
    checkpoint-resumed trials — bit-identical outcomes, a fraction of the
    replay; a pre-recorded ``checkpoints`` store skips even the recording
    run. ``workers=None`` defers to the ``REPRO_WORKERS`` environment.
    ``cache`` controls result caching (see :func:`_cache_for`); a hit
    returns a bit-identical result without profiling or injecting.
    ``max_retries``/``task_timeout`` tune the pooled path's supervisor
    (worker crash/hang recovery; ``None`` defers to ``REPRO_MAX_RETRIES``
    / ``REPRO_TASK_TIMEOUT``) and never affect results — a supervised
    campaign is bit-identical to a serial one or raises a
    :class:`~repro.errors.HarnessError`, never returns partial data.
    ``engine``/``batch_size`` select the trial executor (``"batch"``
    vectorizes trials in lockstep, same outcomes bit-for-bit; ``None``
    defers to ``engine_scope``/``REPRO_ENGINE``) — like the worker count,
    they never enter cache keys. ``transport`` selects the dispatch fabric
    (``None`` defers to ``fabric_scope``/``REPRO_FABRIC_TRANSPORT``; see
    :func:`_dispatch_sites`) — also an execution strategy with no effect
    on results or cache keys.
    """
    store_cache = _cache_for(cache)
    key = None
    if store_cache is not None:
        key = whole_program_key(
            print_module(program.module), args, bindings, rel_tol, abs_tol,
            n_faults, seed,
        )
        cached = _decode_campaign(store_cache.get(key))
        if cached is not None:
            _note_cache_hit("fi.whole-program", key, cached.trials)
            return cached
    if profile is None:
        profile = profile_run(program, args=args, bindings=bindings)
    store = _resolve_store(
        program, args, bindings, profile, checkpoint_interval, checkpoints
    )
    rng = RngStream(seed, "campaign")
    sites = sample_fault_sites(program.module, profile, n_faults, rng)
    t = _obs_current()
    cid = t.new_campaign() if t is not None else None
    if t is not None:
        t.emit(
            "campaign.begin",
            {
                "label": "fi.whole-program",
                "trials": len(sites),
                "seed": seed,
                "checkpointed": store is not None,
                "engine": resolve_engine(engine),
            },
            campaign=cid,
        )
    t0 = time.perf_counter()
    with _span(
        "campaign",
        {
            "label": "fi.whole-program",
            "trials": len(sites),
            "engine": resolve_engine(engine),
        },
        campaign=cid,
    ):
        per_fault = _dispatch_sites(
            program, sites, store, profile, args, bindings, rel_tol, abs_tol,
            workers, "fi campaign", cid, max_retries, task_timeout,
            engine, batch_size, transport,
        )
    counts = OutcomeCounts()
    for _, o in per_fault:
        counts.record(o)
    if t is not None:
        _note_campaign(
            t, cid, "fi.whole-program", counts, len(sites),
            time.perf_counter() - t0,
        )
    result = CampaignResult(
        counts=counts, per_fault=per_fault, trials=len(sites)
    )
    # Publish only fully classified outcome sets: a failed campaign raises
    # before this point, and the length check is the belt-and-braces guard
    # against any future executor returning partial results.
    if store_cache is not None and len(per_fault) == len(sites):
        store_cache.put(key, _encode_campaign(result))
    return result


def run_per_instruction_campaign(
    program: Program,
    trials_per_instruction: int,
    seed: int,
    args: list | None = None,
    bindings: dict[str, list] | None = None,
    rel_tol: float = 0.0,
    abs_tol: float = 0.0,
    workers: int | None = 0,
    profile: DynamicProfile | None = None,
    only_iids: list[int] | None = None,
    checkpoint_interval: int | str | None = None,
    checkpoints: CheckpointStore | None = None,
    cache=None,
    max_retries: int | None = None,
    task_timeout: float | None = None,
    engine: str | None = None,
    batch_size: int | None = None,
    transport: str | None = None,
) -> PerInstructionResult:
    """Per-instruction campaign over every executed injectable instruction.

    ``only_iids`` restricts the sweep (used by incremental passes that only
    need a subset re-measured). ``checkpoint_interval``/``checkpoints``,
    ``workers``, and ``max_retries``/``task_timeout`` behave as in
    :func:`run_campaign` — per-instruction sweeps replay the golden prefix
    hardest (trials × instructions), so they gain the most from checkpoint
    resume. ``cache`` behaves as in :func:`run_campaign`; on a hit only the
    golden profile is (re)computed — and even that is skipped when the
    caller supplies one.
    """
    module = program.module
    targets = only_iids if only_iids is not None else injectable_iids(module)
    store_cache = _cache_for(cache)
    key = None
    if store_cache is not None:
        key = per_instruction_key(
            print_module(module), args, bindings, rel_tol, abs_tol,
            trials_per_instruction, seed, targets,
        )
        payload = store_cache.get(key)
        if payload is not None:
            if profile is None:
                profile = profile_run(program, args=args, bindings=bindings)
            cached = _decode_per_instruction(payload, profile)
            if cached is not None:
                trials = sum(c.total for c in cached.per_iid.values())
                _note_cache_hit("fi.per-instruction", key, trials)
                return cached
    if profile is None:
        profile = profile_run(program, args=args, bindings=bindings)
    store = _resolve_store(
        program, args, bindings, profile, checkpoint_interval, checkpoints
    )
    rng = RngStream(seed, "per-instr")
    all_sites: list[FaultSite] = []
    for iid in targets:
        all_sites.extend(
            sample_per_instruction_sites(
                module, profile, iid, trials_per_instruction, rng.child(iid)
            )
        )
    t = _obs_current()
    cid = t.new_campaign() if t is not None else None
    if t is not None:
        t.emit(
            "campaign.begin",
            {
                "label": "fi.per-instruction",
                "trials": len(all_sites),
                "seed": seed,
                "n_iids": len(targets),
                "trials_per_instruction": trials_per_instruction,
                "checkpointed": store is not None,
                "engine": resolve_engine(engine),
            },
            campaign=cid,
        )
    t0 = time.perf_counter()
    with _span(
        "campaign",
        {
            "label": "fi.per-instruction",
            "trials": len(all_sites),
            "engine": resolve_engine(engine),
        },
        campaign=cid,
    ):
        per_fault = _dispatch_sites(
            program, all_sites, store, profile, args, bindings, rel_tol,
            abs_tol, workers, "per-instruction fi", cid, max_retries,
            task_timeout, engine, batch_size, transport,
        )
    per_iid: dict[int, OutcomeCounts] = {}
    agg = OutcomeCounts()
    for iid, o in per_fault:
        per_iid.setdefault(iid, OutcomeCounts()).record(o)
        agg.record(o)
    if t is not None:
        _note_campaign(
            t, cid, "fi.per-instruction", agg, len(all_sites),
            time.perf_counter() - t0,
        )
    result = PerInstructionResult(
        per_iid=per_iid,
        profile=profile,
        trials_per_instruction=trials_per_instruction,
    )
    # As in run_campaign: only a fully classified sweep may be published —
    # harness failures raise above, so a partial per_iid never reaches here.
    if store_cache is not None and len(per_fault) == len(all_sites):
        store_cache.put(key, _encode_per_instruction(result))
    return result


# ---------------------------------------------------------------------------
# Model-guided (hybrid) campaigns: predict with the static error-propagation
# model, spend FI trials only where the prediction could change the
# protected set (near the knapsack cut), and keep model probabilities for
# the long tail. Imported lazily-by-layer: repro.analysis depends on
# repro.fi.faultmodel only, so this direction introduces no cycle.
# ---------------------------------------------------------------------------


@dataclass
class HybridResult:
    """Predict-then-verify outcome: FI where it matters, model elsewhere.

    Duck-typed like :class:`PerInstructionResult` (``sdc_probability`` /
    ``sdc_probabilities`` / ``profile``), plus per-iid ``provenance`` so
    profiles and results can label which probabilities were verified.
    """

    sdc_prob: dict[int, float]
    #: ``"fi"`` for verified iids, ``"model"`` for predicted-only ones.
    provenance: dict[int, str]
    profile: DynamicProfile
    trials_per_instruction: int
    #: FI trials actually spent vs. what a full sweep would have cost.
    fi_trials: int = 0
    full_sweep_trials: int = 0

    def sdc_probability(self, iid: int) -> float:
        return self.sdc_prob.get(iid, 0.0)

    def sdc_probabilities(self) -> dict[int, float]:
        return dict(self.sdc_prob)

    @property
    def trials_saved_factor(self) -> float:
        """How many times cheaper than a full per-instruction sweep."""
        if self.fi_trials <= 0:
            return float("inf") if self.full_sweep_trials else 1.0
        return self.full_sweep_trials / self.fi_trials


def run_model_guided_campaign(
    program: Program,
    trials_per_instruction: int,
    seed: int,
    args: list | None = None,
    bindings: dict[str, list] | None = None,
    rel_tol: float = 0.0,
    abs_tol: float = 0.0,
    workers: int | None = 0,
    profile: DynamicProfile | None = None,
    protection_levels: tuple[float, ...] = (0.3, 0.5, 0.7),
    verify_margin: float = 0.3,
    checkpoint_interval: int | str | None = None,
    checkpoints: CheckpointStore | None = None,
    cache=None,
    max_retries: int | None = None,
    task_timeout: float | None = None,
    masking=None,
    engine: str | None = None,
    batch_size: int | None = None,
    transport: str | None = None,
) -> HybridResult:
    """Hybrid campaign: model predictions, FI-verified near the cut.

    The static model ranks every executed injectable instruction; the
    knapsack's would-be selections at each ``protection_levels`` budget,
    widened by ``verify_margin``, form the verify set — the only
    instructions whose trials can change what gets protected. Those run
    through the ordinary (cached, checkpointed, pooled)
    :func:`run_per_instruction_campaign`; everything else keeps its model
    probability. Deterministic in (program, input, seed, model constants):
    the verify set derives from the golden profile and the model alone, so
    the FI subset — and its cache key — is stable across runs and workers.
    """
    from repro.analysis.masking import DEFAULT_MASKING
    from repro.analysis.model import (
        density_ranked,
        model_verify_set,
        predict_sdc_probabilities,
    )

    if masking is None:
        masking = DEFAULT_MASKING
    module = program.module
    if profile is None:
        profile = profile_run(program, args=args, bindings=bindings)
    predicted = predict_sdc_probabilities(
        module, profile, rel_tol=rel_tol, masking=masking, cache=cache
    )
    cycles = {
        iid: profile.instr_cycles[iid] for iid in injectable_iids(module)
    }
    total_cycles = profile.total_cycles
    verify: set[int] = set()
    for level in protection_levels:
        verify.update(
            model_verify_set(
                predicted, cycles, total_cycles, level, verify_margin
            )
        )
    verify_iids = sorted(verify)
    executed = [
        iid for iid in injectable_iids(module) if profile.instr_counts[iid] > 0
    ]
    t = _obs_current()
    if t is not None:
        t.count("model.hybrid_verified", len(verify_iids))
        t.count("model.hybrid_model_only", len(executed) - len(verify_iids))
    fi = run_per_instruction_campaign(
        program,
        trials_per_instruction,
        seed,
        args=args,
        bindings=bindings,
        rel_tol=rel_tol,
        abs_tol=abs_tol,
        workers=workers,
        profile=profile,
        only_iids=verify_iids,
        checkpoint_interval=checkpoint_interval,
        checkpoints=checkpoints,
        cache=cache,
        max_retries=max_retries,
        task_timeout=task_timeout,
        engine=engine,
        batch_size=batch_size,
        transport=transport,
    )
    # Merge, keeping the ranking consistent across the verified band.
    # The model's flanks stay unverified on purpose (far above the cut is
    # protected either way, far below stays out), but their raw
    # predictions live on a different scale than the band's measurements,
    # so pin them to the band's extremes: the upper flank may not rank
    # below any measurement (clamp to the measured ceiling) and the lower
    # flank may not rank above one (monotone squash under the measured
    # floor). Gap iids between bands of different levels keep raw
    # predictions.
    ranked = density_ranked(predicted, cycles, total_cycles)
    pos = {iid: k for k, iid in enumerate(ranked)}
    vpos = [pos[i] for i in verify_iids if i in pos]
    lo_pos = min(vpos) if vpos else 0
    hi_pos = max(vpos) if vpos else -1
    ceiling = max(
        (fi.sdc_probability(i) for i in verify_iids), default=1.0
    )
    floor = min(
        (fi.sdc_probability(i) for i in verify_iids), default=0.0
    )
    tail_max = max(
        (
            predicted.sdc_prob[iid]
            for iid, k in pos.items()
            if k > hi_pos and iid not in verify
        ),
        default=0.0,
    )
    squash = floor / tail_max if tail_max > floor else 1.0
    merged: dict[int, float] = {}
    provenance: dict[int, str] = {}
    for iid, p in predicted.sdc_prob.items():
        if iid in verify:
            merged[iid] = fi.sdc_probability(iid)
            provenance[iid] = "fi"
            continue
        provenance[iid] = "model"
        k = pos.get(iid)
        if k is None:
            merged[iid] = p  # never executed; predicted 0 already
        elif k < lo_pos:
            merged[iid] = max(p, ceiling)
        elif k > hi_pos:
            merged[iid] = p * squash
        else:
            merged[iid] = min(max(p, floor), ceiling)
    result = HybridResult(
        sdc_prob=merged,
        provenance=provenance,
        profile=profile,
        trials_per_instruction=trials_per_instruction,
        fi_trials=len(verify_iids) * trials_per_instruction,
        full_sweep_trials=len(executed) * trials_per_instruction,
    )
    if t is not None:
        t.emit(
            "model.hybrid",
            {
                "n_verified": len(verify_iids),
                "n_model_only": len(executed) - len(verify_iids),
                "fi_trials": result.fi_trials,
                "full_sweep_trials": result.full_sweep_trials,
                "trials_saved_factor": result.trials_saved_factor,
                "protection_levels": list(protection_levels),
                "verify_margin": verify_margin,
            },
        )
    return result
