"""The complete MINPSID pipeline (Fig. 4, ①–⑨).

Input: an application and a protection level. Output: a protected module, the
(conservative) expected coverage, the incubative set, and the Fig. 8-style
time breakdown. Fully automated, like the paper's tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import App
from repro.cache.active import cache_scope
from repro.minpsid.reprioritize import reprioritize
from repro.minpsid.search import InputSearchConfig, SearchOutcome, run_input_search
from repro.sid.duplication import ProtectedModule, duplicate_instructions
from repro.sid.profiles import CostBenefitProfile, build_profile_from_source
from repro.sid.selection import SelectionResult, select_instructions
from repro.obs.timers import Stopwatch
from repro.vm.profiler import profile_run

__all__ = ["MINPSIDConfig", "MINPSIDResult", "minpsid"]


@dataclass(frozen=True)
class MINPSIDConfig:
    """Knobs of the MINPSID pipeline."""

    protection_level: float = 0.5
    #: Faults per static instruction on the reference input (①).
    per_instruction_trials: int = 20
    seed: int = 2022
    search: InputSearchConfig = InputSearchConfig()
    knapsack_method: str = "greedy"
    check_placement: str = "sync"
    workers: int | None = 0
    #: Disable re-prioritization (ablation: search without using its result).
    apply_reprioritization: bool = True
    #: "max" (paper) or "mean" benefit update (ablation).
    reprioritize_rule: str = "max"
    #: Campaign-cache directory for every FI sweep of the pipeline
    #: (None = ambient cache, False = disabled for this run).
    cache_dir: str | None = None
    #: Source of the reference-input SDC probabilities (①②): "fi" (the
    #: paper's per-instruction campaign), "model" (static prediction only),
    #: or "hybrid" (model + FI verification near the knapsack cut). The
    #: search engine's sweeps (⑤) always use FI — incubative detection
    #: needs measured probabilities on non-reference inputs.
    profile_source: str = "fi"


@dataclass
class MINPSIDResult:
    """Everything the pipeline produces for one application."""

    protected: ProtectedModule
    selection: SelectionResult
    #: The re-prioritized profile the knapsack ran on.
    profile: CostBenefitProfile = field(repr=False, default=None)
    #: The original reference-input profile (pre-re-prioritization).
    reference_profile: CostBenefitProfile = field(repr=False, default=None)
    search: SearchOutcome = None
    stopwatch: Stopwatch = None

    @property
    def expected_coverage(self) -> float:
        return self.selection.expected_coverage

    @property
    def incubative(self) -> set[int]:
        return self.search.incubative


def minpsid(app: App, config: MINPSIDConfig = MINPSIDConfig()) -> MINPSIDResult:
    """Run MINPSID end-to-end on an application.

    With a campaign cache active (``config.cache_dir`` or an installed
    store), the reference per-instruction sweep (①②) and every searched
    input's sweep (⑤) replay persisted results when nothing relevant
    changed — re-running the pipeline after an unrelated edit costs golden
    runs and the GA, not fault injection.
    """
    with cache_scope(config.cache_dir):
        return _minpsid(app, config)


def _minpsid(app: App, config: MINPSIDConfig) -> MINPSIDResult:
    sw = Stopwatch()
    module = app.module
    program = app.program
    args, bindings = app.encode(app.reference_input)

    # ①② SID preparation: reference-input profile + SDC probabilities from
    # the configured source (FI campaign, static model, or hybrid).
    with sw.phase("per_inst_fi_ref"):
        dyn = profile_run(program, args=args, bindings=bindings)
        ref_profile = build_profile_from_source(
            program,
            args,
            bindings,
            source=config.profile_source,
            trials_per_instruction=config.per_instruction_trials,
            seed=config.seed,
            rel_tol=app.rel_tol,
            abs_tol=app.abs_tol,
            workers=config.workers,
            protection_levels=(config.protection_level,),
            dyn_profile=dyn,
        )

    # ③–⑦ Input search engine.
    search = run_input_search(
        app,
        reference_benefits=ref_profile.benefit,
        seed=config.seed,
        config=config.search,
        stopwatch=sw,
    )

    # ⑧ Re-prioritization.
    with sw.phase("selection"):
        if config.apply_reprioritization and search.incubative:
            history = search.benefit_history
            if config.reprioritize_rule == "mean":
                from repro.minpsid.incubative import BenefitMap

                mean_b: BenefitMap = {}
                for iid in search.incubative:
                    vals = [h.get(iid, 0.0) for h in history]
                    mean_b[iid] = sum(vals) / len(vals)
                profile = ref_profile.with_benefits(mean_b)
            else:
                profile = reprioritize(ref_profile, history, search.incubative)
        else:
            profile = ref_profile
        # ⑨ Instruction selection at the target protection level.
        selection = select_instructions(
            profile, config.protection_level, method=config.knapsack_method
        )

    # ⑨ Code transformation.
    with sw.phase("transform"):
        protected = duplicate_instructions(
            module, selection.selected, check_placement=config.check_placement
        )

    return MINPSIDResult(
        protected=protected,
        selection=selection,
        profile=profile,
        reference_profile=ref_profile,
        search=search,
        stopwatch=sw,
    )
