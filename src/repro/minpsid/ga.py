"""Genetic-algorithm input search (④ in Fig. 4).

Standard generational GA over application inputs with the paper's operators
and rates: per-argument mutation (±10% numeric / re-enumeration, rate 0.4),
single-argument swap crossover (rate 0.05), fitness-proportionate survival,
and termination when the best fitness stops improving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.apps.base import Input, InputSpec
from repro.obs.core import current as _obs_current
from repro.util.rng import RngStream

__all__ = ["GAConfig", "GeneticInputSearch"]


@dataclass(frozen=True)
class GAConfig:
    """GA hyper-parameters (defaults follow §V-B / ref. [37] of the paper)."""

    population_size: int = 8
    mutation_rate: float = 0.4
    crossover_rate: float = 0.05
    #: Hard cap on generations per search (keeps the one-time cost bounded).
    max_generations: int = 8
    #: Stop after this many generations without best-fitness improvement.
    patience: int = 2


@dataclass
class GAStats:
    """Telemetry of one GA search (used by the Fig. 8 time accounting)."""

    generations: int = 0
    evaluations: int = 0
    best_fitness: float = 0.0
    best_history: list[float] = field(default_factory=list)


class GeneticInputSearch:
    """One GA search for the next most-novel input.

    ``evaluate`` maps an input to its fitness (the weighted-CFG Eq. 3 score
    against the search history); it is the expensive call (one profiled
    program execution), so evaluations are cached per search by input value.
    """

    def __init__(
        self,
        spec: InputSpec,
        evaluate: Callable[[Input], float],
        rng: RngStream,
        config: GAConfig = GAConfig(),
    ) -> None:
        self.spec = spec
        self.evaluate = evaluate
        self.rng = rng
        self.config = config
        self.stats = GAStats()
        self._cache: dict[tuple, float] = {}

    # ------------------------------------------------------------------
    def _key(self, inp: Input) -> tuple:
        return tuple(sorted(inp.items()))

    def _fitness(self, inp: Input) -> float:
        key = self._key(inp)
        score = self._cache.get(key)
        if score is None:
            score = self.evaluate(inp)
            self._cache[key] = score
            self.stats.evaluations += 1
        return score

    def _initial_population(self, seeds: list[Input]) -> list[Input]:
        pop = [self.spec.validate(s) for s in seeds[: self.config.population_size]]
        while len(pop) < self.config.population_size:
            if seeds and self.rng.random() < 0.5:
                pop.append(self.spec.mutate(self.rng.choice(seeds), self.rng))
            else:
                pop.append(self.spec.random(self.rng))
        return pop

    # ------------------------------------------------------------------
    def search(self, seeds: list[Input]) -> Input:
        """Run one GA search; returns the fittest input found."""
        cfg = self.config
        t = _obs_current()
        population = self._initial_population(seeds)
        scored = [(self._fitness(ind), i, ind) for i, ind in enumerate(population)]
        scored.sort(reverse=True)
        best_fit, _, best = scored[0]
        self.stats.best_history.append(best_fit)
        stall = 0

        while self.stats.generations < cfg.max_generations and stall < cfg.patience:
            self.stats.generations += 1
            # Survivor selection: top half seeds the next generation.
            parents = [ind for _, _, ind in scored[: max(2, len(scored) // 2)]]
            children: list[Input] = []
            while len(children) + len(parents) < cfg.population_size:
                child = dict(self.rng.choice(parents))
                if self.rng.random() < cfg.mutation_rate:
                    child = self.spec.mutate(child, self.rng)
                children.append(child)
            # Crossover between random pairs of the new generation.
            pool = parents + children
            if len(pool) >= 2 and self.rng.random() < cfg.crossover_rate:
                i, j = self.rng.sample(range(len(pool)), 2)
                pool[i], pool[j] = self.spec.crossover(pool[i], pool[j], self.rng)
            population = [self.spec.validate(ind) for ind in pool]

            scored = [(self._fitness(ind), i, ind) for i, ind in enumerate(population)]
            scored.sort(reverse=True)
            gen_best_fit, _, gen_best = scored[0]
            if gen_best_fit > best_fit:
                best_fit, best = gen_best_fit, gen_best
                stall = 0
            else:
                stall += 1
            self.stats.best_history.append(best_fit)
            if t is not None:
                fits = [f for f, _, _ in scored]
                t.emit(
                    "ga.generation",
                    {
                        "generation": self.stats.generations,
                        "best": best_fit,
                        "gen_best": gen_best_fit,
                        "gen_mean": sum(fits) / len(fits),
                        "gen_min": fits[-1],
                        "evaluations": self.stats.evaluations,
                    },
                )

        self.stats.best_fitness = best_fit
        if t is not None:
            t.count("ga.searches")
            t.count("ga.generations", self.stats.generations)
            t.count("ga.evaluations", self.stats.evaluations)
            t.emit(
                "ga.search",
                {
                    "generations": self.stats.generations,
                    "evaluations": self.stats.evaluations,
                    "best_fitness": best_fit,
                    "best_history": list(self.stats.best_history),
                },
            )
        return dict(best)
