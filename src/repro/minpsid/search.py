"""The input search engine (③–⑦ in Fig. 4) and its random-search baseline.

Loop structure (per the paper):

1. run a GA search maximizing weighted-CFG novelty against the history,
2. per-instruction FI on the winning input → its benefit map,
3. update the incubative set from all ordered pairs against the history,
4. repeat until the incubative set stops growing (or the input budget is
   exhausted — the "given time budget" of §I).

The Fig. 7 baseline replaces steps 1 with a blind random draw (no fitness,
no GA); everything else is identical so the comparison isolates the search
heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.apps.base import App, Input
from repro.cache.active import cache_scope
from repro.fi.campaign import run_per_instruction_campaign
from repro.minpsid.ga import GAConfig, GeneticInputSearch
from repro.minpsid.incubative import (
    BenefitMap,
    IncubativeConfig,
    find_incubative,
)
from repro.minpsid.wcfg import fitness_score, indexed_cfg_list
from repro.obs.core import current as _obs_current
from repro.obs.log import get_logger
from repro.obs.timers import Stopwatch
from repro.util.rng import RngStream
from repro.vm.profiler import DynamicProfile, profile_run

__all__ = ["InputSearchConfig", "SearchOutcome", "run_input_search"]

log = get_logger("minpsid.search")


@dataclass(frozen=True)
class InputSearchConfig:
    """Budget and hyper-parameters of the search engine."""

    #: Maximum number of searched inputs to FI-measure (the time budget).
    max_inputs: int = 10
    #: Stop after this many consecutive inputs adding no incubative instrs.
    stall_limit: int = 3
    #: Faults per static instruction when measuring a searched input.
    per_instruction_trials: int = 8
    #: GA hyper-parameters.
    ga: GAConfig = GAConfig()
    #: Incubative thresholds.
    incubative: IncubativeConfig = IncubativeConfig()
    #: "ga" (MINPSID) or "random" (the Fig. 7 baseline searcher).
    strategy: str = "ga"
    #: Process fan-out for the per-input FI campaigns.
    workers: int | None = 0
    #: Campaign-cache directory for the per-input FI sweeps (None = ambient
    #: cache, False = disabled). The GA revisits inputs across generations
    #: and across protection levels, so searched-input sweeps are the
    #: highest-hit-rate consumers of the cache.
    cache_dir: str | None = None


@dataclass
class SearchOutcome:
    """Everything the search produced."""

    #: Searched inputs in discovery order (reference input first).
    inputs: list[Input]
    #: Benefit map of each searched input (aligned with :attr:`inputs`).
    benefit_history: list[BenefitMap]
    #: The identified incubative instructions.
    incubative: set[int]
    #: Cumulative incubative count after the k-th input (Fig. 7 series).
    trace: list[int] = field(default_factory=list)
    #: Fitness of each accepted input at acceptance time.
    fitness_trace: list[float] = field(default_factory=list)
    #: Total faulty runs spent measuring searched inputs.
    fi_runs: int = 0


def _benefit_map(
    app: App,
    inp: Input,
    trials: int,
    seed: int,
    workers: int,
    profile: DynamicProfile | None = None,
    cache=None,
) -> tuple[BenefitMap, int]:
    """Per-instruction FI on one input → its Eq.-2 benefit map."""
    args, bindings = app.encode(inp)
    program = app.program
    if profile is None:
        profile = profile_run(program, args=args, bindings=bindings)
    fi = run_per_instruction_campaign(
        program,
        trials_per_instruction=trials,
        seed=seed,
        args=args,
        bindings=bindings,
        rel_tol=app.rel_tol,
        abs_tol=app.abs_tol,
        workers=workers,
        profile=profile,
        cache=cache,
    )
    total = profile.total_cycles or 1
    benefits: BenefitMap = {}
    for iid, counts in fi.per_iid.items():
        cost = profile.instr_cycles[iid] / total
        benefits[iid] = counts.sdc_probability * cost
    runs = sum(c.total for c in fi.per_iid.values())
    return benefits, runs


def run_input_search(
    app: App,
    reference_benefits: BenefitMap,
    seed: int,
    config: InputSearchConfig = InputSearchConfig(),
    stopwatch: Stopwatch | None = None,
) -> SearchOutcome:
    """Run the search engine starting from the app's reference input.

    ``reference_benefits`` is the benefit map already measured during SID
    preparation (①), so the reference input costs no extra FI here. With a
    campaign cache active (``config.cache_dir`` or an installed store), a
    searched input whose sweep was already measured — in an earlier run, an
    earlier protection level, or an earlier search round — replays the
    persisted result; per-round reuse is reported in the ``search.round``
    telemetry event (``cache_hits``).
    """
    with cache_scope(config.cache_dir):
        return _run_input_search(
            app, reference_benefits, seed, config, stopwatch
        )


def _run_input_search(
    app: App,
    reference_benefits: BenefitMap,
    seed: int,
    config: InputSearchConfig,
    stopwatch: Stopwatch | None,
) -> SearchOutcome:
    sw = stopwatch or Stopwatch()
    rng = RngStream(seed, "input-search", config.strategy)
    program = app.program

    ref_input = app.input_spec.validate(app.reference_input)
    ref_args, ref_bindings = app.encode(ref_input)
    with sw.phase("search_engine"):
        ref_profile = profile_run(program, args=ref_args, bindings=ref_bindings)
        history_lists = [indexed_cfg_list(program, ref_profile)]

    outcome = SearchOutcome(
        inputs=[ref_input],
        benefit_history=[dict(reference_benefits)],
        incubative=set(),
        trace=[0],
        fitness_trace=[0.0],
    )

    profile_cache: dict[tuple, DynamicProfile] = {}

    def cfg_list_of(inp: Input):
        key = tuple(sorted(inp.items()))
        prof = profile_cache.get(key)
        if prof is None:
            a, b = app.encode(inp)
            prof = profile_run(program, args=a, bindings=b)
            profile_cache[key] = prof
        return indexed_cfg_list(program, prof)

    def evaluate(inp: Input) -> float:
        return fitness_score(cfg_list_of(inp), history_lists)

    stall = 0
    round_no = 0
    while len(outcome.inputs) - 1 < config.max_inputs and stall < config.stall_limit:
        round_no += 1
        with sw.phase("search_engine"):
            if config.strategy == "ga":
                ga = GeneticInputSearch(
                    app.input_spec, evaluate, rng.child("ga", round_no), config.ga
                )
                candidate = ga.search(seeds=list(outcome.inputs))
            else:
                candidate = app.input_spec.random(rng.child("rand", round_no))
            candidate = app.input_spec.validate(candidate)
            fitness = evaluate(candidate)

        t = _obs_current()
        hits_before = (
            t.metrics.counters.get("cache.hit", 0) if t is not None else 0
        )
        with sw.phase("per_inst_fi_incubative"):
            key = tuple(sorted(candidate.items()))
            benefits, runs = _benefit_map(
                app,
                candidate,
                config.per_instruction_trials,
                seed=RngStream(seed, "fi", round_no).seed,
                workers=config.workers,
                profile=profile_cache.get(key),
            )
        outcome.fi_runs += runs
        outcome.inputs.append(candidate)
        outcome.benefit_history.append(benefits)
        outcome.fitness_trace.append(fitness)
        history_lists.append(cfg_list_of(candidate))

        before = set(outcome.incubative)
        outcome.incubative = find_incubative(
            outcome.benefit_history, config.incubative
        )
        outcome.trace.append(len(outcome.incubative))
        new_incubative = sorted(outcome.incubative - before)
        stall = stall + 1 if len(outcome.incubative) == len(before) else 0

        if t is not None:
            t.count("search.rounds")
            if new_incubative:
                t.count("search.incubative_found", len(new_incubative))
                t.emit(
                    "search.incubative",
                    {"round": round_no, "iids": new_incubative},
                )
            t.emit(
                "search.round",
                {
                    "round": round_no,
                    "strategy": config.strategy,
                    "fitness": fitness,
                    "fi_runs": runs,
                    "incubative": len(outcome.incubative),
                    "new_incubative": len(new_incubative),
                    "stall": stall,
                    "cache_hits": (
                        t.metrics.counters.get("cache.hit", 0) - hits_before
                    ),
                },
            )
        log.info(
            "round %d: fitness=%.4f fi_runs=%d incubative=%d (+%d) stall=%d",
            round_no, fitness, runs, len(outcome.incubative),
            len(new_incubative), stall,
        )

    return outcome
