"""Weighted CFG and the indexed-CFG-list fitness function (④⑤⑥ in Fig. 4).

Every input shares the program's *static* CFG; executing the program under an
input weights each basic block with its dynamic execution count, yielding the
*indexed CFG list* L = {i_1 … i_N} (N = number of basic blocks). The GA's
fitness of a candidate input is the average Euclidean distance between its
list and the lists of all inputs seen so far (Eq. 3):

    S_L = 1/(|M|+1) · Σ_j sqrt( Σ_n |i_n − b_jn|² )

Implementation note: a block executes exactly once per execution of its
terminator, so block weights come from the terminator's dynamic count — the
same quantity as the paper's sum of incoming-edge weights, available without
walking the edge map.
"""

from __future__ import annotations

import numpy as np

from repro.vm.interpreter import Program
from repro.vm.profiler import DynamicProfile

__all__ = ["indexed_cfg_list", "fitness_score"]


def indexed_cfg_list(program: Program, profile: DynamicProfile) -> np.ndarray:
    """The indexed CFG list of one profiled run (float64 vector, length N)."""
    module = program.module
    cfg = program.cfg
    weights = np.zeros(cfg.num_blocks, dtype=np.float64)
    counts = profile.instr_counts
    for fn in module.functions.values():
        for blk in fn.blocks.values():
            term = blk.terminator
            gid = cfg.index[(fn.name, blk.name)]
            weights[gid] = counts[term.iid]
    return weights


def fitness_score(candidate: np.ndarray, history: list[np.ndarray]) -> float:
    """Eq. 3: average Euclidean distance of ``candidate`` to the history.

    A candidate identical to every historical execution scores 0; the GA
    maximizes this, steering the search toward unseen execution paths.
    """
    if not history:
        return 0.0
    hist = np.asarray(history, dtype=np.float64)
    dists = np.sqrt(((hist - candidate[None, :]) ** 2).sum(axis=1))
    # The paper's normalization uses |M|+1 with M inputs in the history.
    return float(dists.sum() / (len(history) + 1))
