"""Incubative-instruction identification (§IV and ⑦ in Fig. 4).

Definition (paper, §IV): an instruction is *incubative* if its benefit falls
into the last ``q_low`` (1%) of the overall results with one input but moves
out of the last ``q_high`` (30%) of the overall results with a different
input. Thresholds are benefit-value quantiles over the injectable
instructions of the program under each input; with the heavy tie at zero
benefit typical of real profiles, "the last 1%" is the zero-benefit mass and
"out of the last 30%" demands a clearly non-negligible benefit elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "IncubativeConfig",
    "benefit_thresholds",
    "find_incubative_pairwise",
    "find_incubative",
]

BenefitMap = dict[int, float]  # iid -> benefit under one input


@dataclass(frozen=True)
class IncubativeConfig:
    """Quantile thresholds of the incubative definition.

    ``low_rel`` adds the paper's "benefits are very small (near zeros)"
    qualifier as an absolute guard: an instruction only counts as negligible
    if its benefit is also below ``low_rel`` × the profile's maximum benefit.
    Without it, profiles whose benefits tie (e.g. perfectly uniform) would
    degenerate — every instruction would be "in the last 1%".
    """

    q_low: float = 0.01
    q_high: float = 0.30
    low_rel: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.q_low < self.q_high <= 1.0:
            raise ValueError(
                f"need 0 <= q_low < q_high <= 1, got ({self.q_low}, {self.q_high})"
            )
        if not 0.0 <= self.low_rel <= 1.0:
            raise ValueError(f"low_rel must be in [0, 1], got {self.low_rel}")


def benefit_thresholds(
    benefits: BenefitMap, config: IncubativeConfig = IncubativeConfig()
) -> tuple[float, float]:
    """(v_low, v_high) benefit-value quantiles of one input's profile."""
    values = np.fromiter(benefits.values(), dtype=np.float64)
    if values.size == 0:
        return (0.0, 0.0)
    v_low = float(np.quantile(values, config.q_low))
    v_high = float(np.quantile(values, config.q_high))
    return v_low, v_high


def find_incubative_pairwise(
    benefits_a: BenefitMap,
    benefits_b: BenefitMap,
    config: IncubativeConfig = IncubativeConfig(),
) -> set[int]:
    """Instructions negligible under input A but substantial under input B.

    Symmetric usage (A,B) then (B,A) captures both directions; the search
    engine unions over all ordered pairs against the history.
    """
    v_low_a, _ = benefit_thresholds(benefits_a, config)
    _, v_high_b = benefit_thresholds(benefits_b, config)
    max_a = max(benefits_a.values(), default=0.0)
    abs_low = config.low_rel * max_a
    out: set[int] = set()
    for iid, ben_a in benefits_a.items():
        if ben_a <= v_low_a and ben_a <= abs_low:
            ben_b = benefits_b.get(iid, 0.0)
            if ben_b > v_high_b and ben_b > 0.0:
                out.add(iid)
    return out


def find_incubative(
    history: list[BenefitMap],
    config: IncubativeConfig = IncubativeConfig(),
) -> set[int]:
    """Union of pairwise incubative sets over all ordered input pairs."""
    out: set[int] = set()
    for i, a in enumerate(history):
        for j, b in enumerate(history):
            if i != j:
                out |= find_incubative_pairwise(a, b, config)
    return out
