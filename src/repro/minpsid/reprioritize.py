"""Benefit re-prioritization (⑧ in Fig. 4).

MINPSID replaces each incubative instruction's benefit with the *highest*
benefit observed for it across all searched inputs, so the knapsack sees its
worst-case (most SDC-prone) behaviour and prioritizes it. Non-incubative
instructions keep their reference-input profile. The deliberately
conservative update is why MINPSID's expected coverage bounds the minimum
measured coverage (§VI-A).
"""

from __future__ import annotations

from repro.minpsid.incubative import BenefitMap
from repro.sid.profiles import CostBenefitProfile

__all__ = ["reprioritize", "max_benefits"]


def max_benefits(history: list[BenefitMap], iids: set[int]) -> BenefitMap:
    """Per-iid maximum benefit over the searched-input history."""
    out: BenefitMap = {}
    for benefits in history:
        for iid in iids:
            b = benefits.get(iid, 0.0)
            if b > out.get(iid, 0.0):
                out[iid] = b
    return out


def reprioritize(
    profile: CostBenefitProfile,
    history: list[BenefitMap],
    incubative: set[int],
) -> CostBenefitProfile:
    """Profile copy with incubative benefits raised to their observed maxima.

    The SDC-probability map is raised consistently (benefit = sdcprob × cost,
    with the reference cost as the knapsack weight), so expected-coverage
    aggregation sees the same conservative view the knapsack does.
    """
    new_b = max_benefits(history, incubative)
    updated = profile.with_benefits(new_b)
    for iid, b in new_b.items():
        cost = profile.cost.get(iid, 0.0)
        if cost > 0:
            updated.sdc_prob[iid] = max(
                profile.sdc_prob.get(iid, 0.0), min(1.0, b / cost)
            )
    return updated
