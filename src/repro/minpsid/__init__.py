"""MINPSID: Multi-Input-hardened Selective Instruction Duplication.

The paper's contribution (§V): identify *incubative instructions* — those
whose benefit is negligible under the reference input but substantial under
other inputs — via a GA-driven input search guided by weighted-CFG novelty,
re-prioritize them with the maximum benefit observed across searched inputs,
and re-run the knapsack selection.
"""

from repro.minpsid.wcfg import indexed_cfg_list, fitness_score
from repro.minpsid.ga import GAConfig, GeneticInputSearch
from repro.minpsid.incubative import (
    IncubativeConfig,
    benefit_thresholds,
    find_incubative,
    find_incubative_pairwise,
)
from repro.minpsid.search import (
    InputSearchConfig,
    SearchOutcome,
    run_input_search,
)
from repro.minpsid.reprioritize import reprioritize
from repro.minpsid.pipeline import MINPSIDConfig, MINPSIDResult, minpsid

__all__ = [
    "indexed_cfg_list",
    "fitness_score",
    "GAConfig",
    "GeneticInputSearch",
    "IncubativeConfig",
    "benefit_thresholds",
    "find_incubative",
    "find_incubative_pairwise",
    "InputSearchConfig",
    "SearchOutcome",
    "run_input_search",
    "reprioritize",
    "MINPSIDConfig",
    "MINPSIDResult",
    "minpsid",
]
