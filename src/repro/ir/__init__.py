"""A typed, register-based mini-IR standing in for LLVM IR.

The paper performs all analysis and transformation at the LLVM IR level; this
package provides the equivalent substrate: types, SSA-flavoured values,
instructions grouped into basic blocks and functions, a builder API with
structured control-flow helpers, a verifier, a round-trippable text format and
static CFG utilities.
"""

from repro.ir.types import (
    F32,
    F64,
    I1,
    I8,
    I16,
    I32,
    I64,
    PTR,
    VOID,
    Type,
)
from repro.ir.values import Argument, Constant, GlobalArray, Value
from repro.ir.instructions import (
    CMP_PREDICATES,
    FMATH_FUNCS,
    OPCODES,
    SYNC_OPCODES,
    TERMINATORS,
    Instruction,
)
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.builder import Builder
from repro.ir.verifier import verify_module
from repro.ir.printer import print_function, print_module
from repro.ir.parser import parse_module
from repro.ir.cfg import StaticCFG, build_cfg

__all__ = [
    "Type",
    "I1",
    "I8",
    "I16",
    "I32",
    "I64",
    "F32",
    "F64",
    "PTR",
    "VOID",
    "Value",
    "Constant",
    "Argument",
    "GlobalArray",
    "Instruction",
    "OPCODES",
    "TERMINATORS",
    "SYNC_OPCODES",
    "CMP_PREDICATES",
    "FMATH_FUNCS",
    "BasicBlock",
    "Function",
    "Module",
    "Builder",
    "verify_module",
    "print_module",
    "print_function",
    "parse_module",
    "StaticCFG",
    "build_cfg",
]
