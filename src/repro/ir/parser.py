"""Parser for the textual IR format produced by :mod:`repro.ir.printer`.

Supports full round-tripping: ``parse_module(print_module(m))`` reproduces an
equivalent module (including duplication provenance comments). Used by tests
and by users who prefer writing small programs as text.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    CAST_OPS,
    CMP_PREDICATES,
    FLOAT_BINOPS,
    FMATH_FUNCS,
    INT_BINOPS,
    Instruction,
)
from repro.ir.module import Module
from repro.ir.types import I1, PTR, VOID, Type, type_from_name
from repro.ir.values import Constant, GlobalArray, Value

__all__ = ["parse_module"]

_GLOBAL_RE = re.compile(
    r"^global\s+@(\w[\w.]*)\s*:\s*(\w+)\[(\d+)\](?:\s*=\s*\[(.*)\])?$"
)
_FUNC_RE = re.compile(r"^func\s+@(\w[\w.]*)\((.*)\)\s*->\s*(\w+)\s*\{$")
_ARG_RE = re.compile(r"^%(\w[\w.]*)\s*:\s*(\w+)$")
_LABEL_RE = re.compile(r"^(\w[\w.]*):$")
_DEF_RE = re.compile(r"^%(\w[\w.]*)\s*=\s*(.*)$")
_DUP_RE = re.compile(r";\s*dup-of\s+(\d+)\s*$")
_PHI_INC_RE = re.compile(r"\[(\w[\w.]*):\s*([^\]]+)\]")


class _PendingOperand:
    """An operand token awaiting name resolution (second pass)."""

    __slots__ = ("type", "token")

    def __init__(self, type_: Type, token: str) -> None:
        self.type = type_
        self.token = token


def _split_operands(text: str) -> list[str]:
    """Split a comma-separated operand list, respecting brackets."""
    parts, depth, cur = [], 0, []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_typed_token(text: str, where: str) -> _PendingOperand:
    """Parse ``ty TOKEN`` into a pending operand."""
    bits = text.strip().split(None, 1)
    if len(bits) != 2:
        raise ParseError(f"{where}: malformed operand {text!r}")
    ty = type_from_name(bits[0])
    return _PendingOperand(ty, bits[1].strip())


def parse_module(text: str) -> Module:
    """Parse textual IR into a finalized :class:`Module`."""
    lines = [ln.rstrip() for ln in text.splitlines()]
    idx = 0

    def next_line() -> str | None:
        nonlocal idx
        while idx < len(lines):
            raw = lines[idx]
            idx += 1
            stripped = raw.strip()
            if stripped and not stripped.startswith(";"):
                return raw
        return None

    first = next_line()
    if first is None or not first.strip().startswith("module"):
        raise ParseError("input must start with 'module <name>'")
    module = Module(first.strip().split(None, 1)[1].strip())

    line = next_line()
    while line is not None:
        stripped = line.strip()
        if stripped.startswith("global"):
            m = _GLOBAL_RE.match(stripped)
            if not m:
                raise ParseError(f"bad global declaration: {stripped!r}")
            name, tyname, size, init_text = m.groups()
            ety = type_from_name(tyname)
            init = None
            if init_text is not None and init_text.strip():
                vals = [v.strip() for v in init_text.split(",")]
                init = [float(v) if ety.is_float else int(v) for v in vals]
            module.add_global(name, ety, int(size), init)
            line = next_line()
        elif stripped.startswith("func"):
            line = _parse_function(module, stripped, next_line)
        else:
            raise ParseError(f"unexpected line: {stripped!r}")

    module.finalize()
    return module


def _parse_function(module: Module, header: str, next_line) -> str | None:
    m = _FUNC_RE.match(header)
    if not m:
        raise ParseError(f"bad function header: {header!r}")
    fname, args_text, ret_name = m.groups()
    arg_specs: list[tuple[str, Type]] = []
    if args_text.strip():
        for part in args_text.split(","):
            am = _ARG_RE.match(part.strip())
            if not am:
                raise ParseError(f"bad argument spec {part!r} in @{fname}")
            arg_specs.append((am.group(1), type_from_name(am.group(2))))
    fn = Function(fname, arg_specs, type_from_name(ret_name))
    module.add_function(fn)

    names: dict[str, Value] = {a.name: a for a in fn.args}
    pending: list[Instruction] = []
    block: BasicBlock | None = None

    line = next_line()
    while line is not None:
        stripped = line.strip()
        if stripped == "}":
            break
        lm = _LABEL_RE.match(stripped)
        if lm:
            block = fn.add_block(lm.group(1))
            line = next_line()
            continue
        if block is None:
            raise ParseError(f"@{fname}: instruction before any block label")
        instr = _parse_instruction(stripped, fn, module, names)
        block.append(instr)
        pending.append(instr)
        line = next_line()
    else:
        raise ParseError(f"@{fname}: missing closing '}}'")

    # Second pass: resolve register references (forward refs allowed for phi).
    for instr in pending:
        for i, op in enumerate(instr.operands):
            if isinstance(op, _PendingOperand):
                instr.operands[i] = _resolve(op, names, module, fname)
        if instr.opcode == "phi":
            incoming = instr.attrs["incoming"]
            for i, (blk, op) in enumerate(incoming):
                if isinstance(op, _PendingOperand):
                    incoming[i] = (blk, _resolve(op, names, module, fname))
            instr.operands = [v for _, v in incoming]
    return next_line()


def _resolve(op: _PendingOperand, names: dict, module: Module, fname: str) -> Value:
    tok = op.token
    if tok.startswith("%"):
        val = names.get(tok[1:])
        if val is None:
            raise ParseError(f"@{fname}: undefined register {tok}")
        return val
    if tok.startswith("@"):
        return module.get_global(tok[1:])
    if op.type.is_float:
        return Constant(op.type, float(tok))
    return Constant(op.type, int(tok, 0))


def _parse_instruction(
    text: str, fn: Function, module: Module, names: dict[str, Value]
) -> Instruction:
    where = f"@{fn.name}"
    origin: int | None = None
    dm = _DUP_RE.search(text)
    if dm:
        origin = int(dm.group(1))
        text = text[: dm.start()].rstrip()

    dest: str | None = None
    m = _DEF_RE.match(text)
    if m:
        dest, text = m.group(1), m.group(2).strip()

    head, _, rest = text.partition(" ")
    rest = rest.strip()
    instr: Instruction

    if head in INT_BINOPS or head in FLOAT_BINOPS or head in (
        "gep", "check", "checkrange", "select",
    ):
        ops = [_parse_typed_token(p, where) for p in _split_operands(rest)]
        rtype = {
            "gep": PTR,
            "check": VOID,
            "checkrange": VOID,
        }.get(head)
        if rtype is None:
            rtype = ops[1].type if head == "select" else ops[0].type
        instr = Instruction(head, rtype, ops, name=dest)
    elif head in ("icmp", "fcmp"):
        pred, _, optext = rest.partition(" ")
        if pred not in CMP_PREDICATES[head]:
            raise ParseError(f"{where}: bad {head} predicate {pred!r}")
        ops = [_parse_typed_token(p, where) for p in _split_operands(optext)]
        instr = Instruction(head, I1, ops, name=dest, attrs={"pred": pred})
    elif head == "fmath":
        fn_name, _, optext = rest.partition(" ")
        if fn_name not in FMATH_FUNCS:
            raise ParseError(f"{where}: bad fmath function {fn_name!r}")
        op = _parse_typed_token(optext, where)
        instr = Instruction("fmath", op.type, [op], name=dest, attrs={"fn": fn_name})
    elif head == "alloca":
        am = re.match(r"^(\w+)\s+x\s+(\d+)$", rest)
        if not am:
            raise ParseError(f"{where}: bad alloca {rest!r}")
        instr = Instruction(
            "alloca", PTR, [], name=dest,
            attrs={"elem": type_from_name(am.group(1)), "count": int(am.group(2))},
        )
    elif head == "load":
        tyname, _, optext = rest.partition(" ")
        op = _parse_typed_token(optext, where)
        instr = Instruction("load", type_from_name(tyname), [op], name=dest)
    elif head == "store":
        ops = [_parse_typed_token(p, where) for p in _split_operands(rest)]
        instr = Instruction("store", VOID, ops)
    elif head in CAST_OPS:
        tom = re.match(r"^to\s+(\w+)\s+(.*)$", rest)
        if not tom:
            raise ParseError(f"{where}: bad cast {text!r}")
        op = _parse_typed_token(tom.group(2), where)
        instr = Instruction(head, type_from_name(tom.group(1)), [op], name=dest)
    elif head == "call":
        cm = re.match(r"^(\w+)\s+@(\w[\w.]*)\s*(.*)$", rest)
        if not cm:
            raise ParseError(f"{where}: bad call {text!r}")
        rtype = type_from_name(cm.group(1))
        ops = (
            [_parse_typed_token(p, where) for p in _split_operands(cm.group(3))]
            if cm.group(3).strip()
            else []
        )
        instr = Instruction("call", rtype, ops, name=dest, attrs={"callee": cm.group(2)})
    elif head == "phi":
        tyname, _, inctext = rest.partition(" ")
        ty = type_from_name(tyname)
        incoming = []
        for blk, optext in _PHI_INC_RE.findall(inctext):
            incoming.append((blk, _parse_typed_token(optext, where)))
        if not incoming:
            raise ParseError(f"{where}: phi with no incomings")
        instr = Instruction("phi", ty, [], name=dest, attrs={"incoming": incoming})
    elif head == "br":
        instr = Instruction("br", VOID, [], attrs={"target": rest.strip()})
    elif head == "condbr":
        parts = _split_operands(rest)
        if len(parts) != 3:
            raise ParseError(f"{where}: bad condbr {text!r}")
        cond = _parse_typed_token(parts[0], where)
        instr = Instruction(
            "condbr", VOID, [cond],
            attrs={"iftrue": parts[1].strip(), "iffalse": parts[2].strip()},
        )
    elif head == "ret" or text == "ret":
        ops = [_parse_typed_token(rest, where)] if rest else []
        instr = Instruction("ret", VOID, ops)
    elif head == "emit":
        instr = Instruction("emit", VOID, [_parse_typed_token(rest, where)])
    else:
        raise ParseError(f"{where}: unknown instruction {text!r}")

    instr.origin = origin
    if dest is not None:
        if dest in names:
            raise ParseError(f"{where}: register %{dest} redefined")
        names[dest] = instr
    return instr
