"""IR type system: fixed-width integers, IEEE floats, pointers and void.

Types are interned singletons; identity comparison (``is``) is safe and is
what the verifier and interpreter use.
"""

from __future__ import annotations

from repro.errors import IRError

__all__ = [
    "Type",
    "I1",
    "I8",
    "I16",
    "I32",
    "I64",
    "F32",
    "F64",
    "PTR",
    "VOID",
    "INT_TYPES",
    "FLOAT_TYPES",
    "type_from_name",
]


class Type:
    """An IR type.

    Attributes
    ----------
    kind:
        One of ``"int"``, ``"float"``, ``"ptr"``, ``"void"``.
    width:
        Bit width (64 for pointers, 0 for void).
    name:
        Canonical spelling used by the printer/parser (``i32``, ``f64``...).
    """

    __slots__ = ("kind", "width", "name", "mask")

    def __init__(self, kind: str, width: int, name: str) -> None:
        self.kind = kind
        self.width = width
        self.name = name
        # All-ones mask for integer truncation; harmless 0 for non-ints.
        self.mask = (1 << width) - 1 if kind in ("int", "ptr") else 0

    # Types are interned singletons: copying must preserve identity so that
    # `is` comparisons survive Module.clone() (which deep-copies modules).
    def __copy__(self) -> "Type":
        return self

    def __deepcopy__(self, memo) -> "Type":
        return self

    @property
    def is_int(self) -> bool:
        return self.kind == "int"

    @property
    def is_float(self) -> bool:
        return self.kind == "float"

    @property
    def is_ptr(self) -> bool:
        return self.kind == "ptr"

    @property
    def is_void(self) -> bool:
        return self.kind == "void"

    def __repr__(self) -> str:
        return self.name


I1 = Type("int", 1, "i1")
I8 = Type("int", 8, "i8")
I16 = Type("int", 16, "i16")
I32 = Type("int", 32, "i32")
I64 = Type("int", 64, "i64")
F32 = Type("float", 32, "f32")
F64 = Type("float", 64, "f64")
PTR = Type("ptr", 64, "ptr")
VOID = Type("void", 0, "void")

INT_TYPES = (I1, I8, I16, I32, I64)
FLOAT_TYPES = (F32, F64)

_BY_NAME = {t.name: t for t in (*INT_TYPES, *FLOAT_TYPES, PTR, VOID)}


def type_from_name(name: str) -> Type:
    """Look a type up by its canonical spelling (raises :class:`IRError`)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise IRError(f"unknown type name {name!r}") from None
