"""Modules: the unit of compilation, analysis, protection and execution."""

from __future__ import annotations

import copy

from repro.errors import IRError
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.types import Type
from repro.ir.values import GlobalArray

__all__ = ["Module"]


class Module:
    """A collection of globals and functions.

    After construction a module must be :meth:`finalize` d, which verifies it
    and assigns a stable, dense ``iid`` to every instruction (block order
    within function order). All downstream profiles key on iids, so any
    transformation that adds/removes instructions must re-finalize — original
    instructions keep their object identity but iids are recomputed, which is
    why the duplication pass records provenance in ``Instruction.origin``
    *before* re-finalizing and the pipeline maps profiles through the
    ``iid_map`` it returns.
    """

    __slots__ = ("name", "globals", "functions", "finalized", "_by_iid")

    def __init__(self, name: str) -> None:
        self.name = name
        self.globals: dict[str, GlobalArray] = {}
        self.functions: dict[str, Function] = {}
        self.finalized = False
        self._by_iid: list[Instruction] = []

    # ------------------------------------------------------------------
    def add_global(
        self,
        name: str,
        elem_type: Type,
        size: int,
        init: list[int | float] | None = None,
    ) -> GlobalArray:
        if name in self.globals:
            raise IRError(f"duplicate global @{name}")
        g = GlobalArray(name, elem_type, size, init)
        self.globals[name] = g
        return g

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise IRError(f"duplicate function @{fn.name}")
        fn.parent = self
        self.functions[fn.name] = fn
        return fn

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function @{name} in module {self.name!r}") from None

    def get_global(self, name: str) -> GlobalArray:
        try:
            return self.globals[name]
        except KeyError:
            raise IRError(f"no global @{name} in module {self.name!r}") from None

    # ------------------------------------------------------------------
    def finalize(self, verify: bool = True) -> "Module":
        """Verify the module and assign dense iids; returns self."""
        if verify:
            from repro.ir.verifier import verify_module

            verify_module(self)
        self._by_iid = []
        iid = 0
        for fn in self.functions.values():
            for instr in fn.instructions():
                instr.iid = iid
                self._by_iid.append(instr)
                iid += 1
        self.finalized = True
        return self

    def instruction(self, iid: int) -> Instruction:
        """The instruction with the given iid (module must be finalized)."""
        if not self.finalized:
            raise IRError("module not finalized")
        return self._by_iid[iid]

    def instructions(self):
        """All instructions in iid order (module must be finalized)."""
        if not self.finalized:
            raise IRError("module not finalized")
        return iter(self._by_iid)

    def instruction_count(self) -> int:
        return len(self._by_iid) if self.finalized else sum(
            fn.static_instruction_count() for fn in self.functions.values()
        )

    def value_producing_iids(self) -> list[int]:
        """iids of instructions with a return value — the fault-injectable set."""
        return [i.iid for i in self.instructions() if i.produces_value]

    def clone(self) -> "Module":
        """Deep-copy the module (used before destructive transformations)."""
        return copy.deepcopy(self)

    def __repr__(self) -> str:
        return (
            f"<Module {self.name!r}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals, {self.instruction_count()} instrs>"
        )
