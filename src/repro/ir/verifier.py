"""IR verifier: structural and type well-formedness checks.

Run automatically by :meth:`Module.finalize`. Catches builder misuse early so
the interpreter's hot loop can skip defensive checks.
"""

from __future__ import annotations

from repro.errors import VerificationError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    CAST_OPS,
    CMP_PREDICATES,
    FLOAT_BINOPS,
    FMATH_FUNCS,
    INT_BINOPS,
    Instruction,
)
from repro.ir.module import Module
from repro.ir.types import I1, VOID
from repro.ir.values import Argument, Constant, GlobalArray

__all__ = ["verify_module", "verify_function"]


def _fail(where: str, msg: str) -> None:
    raise VerificationError(f"{where}: {msg}")


def _check_operand_count(where: str, instr: Instruction, n: int) -> None:
    if len(instr.operands) != n:
        _fail(where, f"{instr.opcode} expects {n} operands, has {len(instr.operands)}")


def verify_function(fn: Function, module: Module) -> None:
    """Verify one function; raises :class:`VerificationError` on problems."""
    where = f"@{fn.name}"
    if not fn.blocks:
        _fail(where, "function has no blocks")

    defined: set[int] = set()  # id() of values defined in this function
    for arg in fn.args:
        defined.add(id(arg))

    # First pass: collect definitions and check block termination.
    for blk in fn.blocks.values():
        w = f"{where}:{blk.name}"
        if not blk.is_terminated:
            _fail(w, "block lacks a terminator")
        for i, instr in enumerate(blk.instructions):
            if instr.is_terminator and i != len(blk.instructions) - 1:
                _fail(w, f"terminator {instr.opcode} not at end of block")
            if instr.produces_value:
                if instr.name is None:
                    _fail(w, f"value-producing {instr.opcode} has no register name")
                defined.add(id(instr))

    # Second pass: operands, types, control-flow targets.
    for blk in fn.blocks.values():
        w = f"{where}:{blk.name}"
        seen_non_phi = False
        for instr in blk.instructions:
            op = instr.opcode
            if op == "phi":
                if seen_non_phi:
                    _fail(w, "phi after non-phi instruction")
            else:
                seen_non_phi = True
            for v in instr.operands:
                if isinstance(v, (Constant, GlobalArray)):
                    if isinstance(v, GlobalArray) and v.name not in module.globals:
                        _fail(w, f"operand references unknown global @{v.name}")
                    continue
                if isinstance(v, (Argument, Instruction)):
                    if id(v) not in defined:
                        _fail(w, f"{op} uses a value not defined in @{fn.name}")
                    continue
                _fail(w, f"{op} has an operand of unexpected kind {type(v).__name__}")
            _verify_instr_shape(w, instr, fn, module)

    # Third pass: phi incoming blocks must be predecessors.
    preds: dict[str, set[str]] = {name: set() for name in fn.blocks}
    for blk in fn.blocks.values():
        for succ in blk.successors():
            if succ not in fn.blocks:
                _fail(f"{where}:{blk.name}", f"branch to unknown block {succ!r}")
            preds[succ].add(blk.name)
    for blk in fn.blocks.values():
        for phi in blk.phis():
            incoming = phi.attrs.get("incoming", [])
            if not incoming:
                _fail(f"{where}:{blk.name}", "phi with no incoming values")
            for src, val in incoming:
                if src not in preds[blk.name]:
                    _fail(
                        f"{where}:{blk.name}",
                        f"phi incoming from non-predecessor {src!r}",
                    )
                if val.type is not phi.type:
                    _fail(f"{where}:{blk.name}", "phi incoming type mismatch")


def _verify_instr_shape(w: str, instr: Instruction, fn: Function, module: Module) -> None:
    """Opcode-specific arity/type rules."""
    op = instr.opcode
    ops = instr.operands
    if op in INT_BINOPS:
        _check_operand_count(w, instr, 2)
        if not (ops[0].type.is_int and ops[0].type is ops[1].type is instr.type):
            _fail(w, f"{op}: int type mismatch")
    elif op in FLOAT_BINOPS:
        _check_operand_count(w, instr, 2)
        if not (ops[0].type.is_float and ops[0].type is ops[1].type is instr.type):
            _fail(w, f"{op}: float type mismatch")
    elif op in CAST_OPS:
        _check_operand_count(w, instr, 1)
        src, dst = ops[0].type, instr.type
        rules = {
            "trunc": src.is_int and dst.is_int and src.width > dst.width,
            "zext": src.is_int and dst.is_int and src.width < dst.width,
            "sext": src.is_int and dst.is_int and src.width < dst.width,
            "fptosi": src.is_float and dst.is_int,
            "fptoui": src.is_float and dst.is_int,
            "sitofp": src.is_int and dst.is_float,
            "uitofp": src.is_int and dst.is_float,
            "fpext": src.is_float and dst.is_float and src.width < dst.width,
            "fptrunc": src.is_float and dst.is_float and src.width > dst.width,
        }
        if not rules[op]:
            _fail(w, f"{op}: invalid cast {src} -> {dst}")
    elif op in ("icmp", "fcmp"):
        _check_operand_count(w, instr, 2)
        pred = instr.attrs.get("pred")
        if pred not in CMP_PREDICATES[op]:
            _fail(w, f"{op}: bad predicate {pred!r}")
        if instr.type is not I1:
            _fail(w, f"{op}: result must be i1")
        if ops[0].type is not ops[1].type:
            _fail(w, f"{op}: operand type mismatch")
    elif op == "select":
        _check_operand_count(w, instr, 3)
        if ops[0].type is not I1 or ops[1].type is not ops[2].type:
            _fail(w, "select: type mismatch")
        if instr.type is not ops[1].type:
            _fail(w, "select: result type mismatch")
    elif op == "fmath":
        _check_operand_count(w, instr, 1)
        if instr.attrs.get("fn") not in FMATH_FUNCS:
            _fail(w, f"fmath: unknown function {instr.attrs.get('fn')!r}")
        if not (ops[0].type.is_float and instr.type is ops[0].type):
            _fail(w, "fmath: float type mismatch")
    elif op == "alloca":
        _check_operand_count(w, instr, 0)
        if not instr.type.is_ptr:
            _fail(w, "alloca must produce a pointer")
        if instr.attrs.get("count", 0) <= 0:
            _fail(w, "alloca: non-positive count")
    elif op == "load":
        _check_operand_count(w, instr, 1)
        if not ops[0].type.is_ptr:
            _fail(w, "load: operand must be a pointer")
        if instr.type.is_void:
            _fail(w, "load: cannot load void")
    elif op == "store":
        _check_operand_count(w, instr, 2)
        if not ops[1].type.is_ptr:
            _fail(w, "store: second operand must be a pointer")
        if instr.type is not VOID:
            _fail(w, "store: produces no value")
    elif op == "gep":
        _check_operand_count(w, instr, 2)
        if not (ops[0].type.is_ptr and ops[1].type.is_int and instr.type.is_ptr):
            _fail(w, "gep: type mismatch")
    elif op == "phi":
        if instr.type.is_void:
            _fail(w, "phi cannot be void")
    elif op == "call":
        callee = instr.attrs.get("callee")
        target = module.functions.get(callee)
        if target is None:
            _fail(w, f"call to unknown function @{callee}")
        if len(ops) != len(target.args):
            _fail(w, f"call @{callee}: expected {len(target.args)} args, got {len(ops)}")
        for a, p in zip(ops, target.args):
            if a.type is not p.type:
                _fail(w, f"call @{callee}: argument type mismatch")
        if instr.type is not target.return_type:
            _fail(w, f"call @{callee}: return type mismatch")
    elif op == "br":
        _check_operand_count(w, instr, 0)
        if "target" not in instr.attrs:
            _fail(w, "br: missing target")
    elif op == "condbr":
        _check_operand_count(w, instr, 1)
        if ops[0].type is not I1:
            _fail(w, "condbr: condition must be i1")
        if "iftrue" not in instr.attrs or "iffalse" not in instr.attrs:
            _fail(w, "condbr: missing targets")
    elif op == "ret":
        rt = fn.return_type
        if rt.is_void:
            if ops:
                _fail(w, "ret: void function returns a value")
        else:
            if len(ops) != 1 or ops[0].type is not rt:
                _fail(w, "ret: return type mismatch")
    elif op == "emit":
        _check_operand_count(w, instr, 1)
        if ops[0].type.is_void:
            _fail(w, "emit: cannot emit void")
    elif op == "check":
        _check_operand_count(w, instr, 2)
        if ops[0].type is not ops[1].type:
            _fail(w, "check: operand types differ")
    elif op == "checkrange":
        _check_operand_count(w, instr, 3)
        if not (ops[0].type is ops[1].type is ops[2].type):
            _fail(w, "checkrange: operand types differ")
        if not (isinstance(ops[1], Constant) and isinstance(ops[2], Constant)):
            _fail(w, "checkrange: bounds must be constants")
    else:  # pragma: no cover - exhaustive
        _fail(w, f"unhandled opcode {op}")


def verify_module(module: Module) -> None:
    """Verify every function in the module."""
    if "main" not in module.functions:
        raise VerificationError(f"module {module.name!r} has no @main function")
    for fn in module.functions.values():
        verify_function(fn, module)
