"""Functions: argument lists plus an ordered collection of basic blocks."""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Instruction
from repro.ir.types import Type
from repro.ir.values import Argument

__all__ = ["Function"]


class Function:
    """An IR function.

    The first block added is the entry block. Block order is preserved for
    printing and deterministic iid assignment; control flow is defined solely
    by terminators.
    """

    __slots__ = ("name", "args", "return_type", "blocks", "parent", "_next_reg")

    def __init__(self, name: str, arg_specs: list[tuple[str, Type]], return_type: Type) -> None:
        self.name = name
        self.args = [Argument(an, at, i) for i, (an, at) in enumerate(arg_specs)]
        self.return_type = return_type
        self.blocks: dict[str, BasicBlock] = {}
        self.parent = None  # owning Module
        self._next_reg = 0

    # ------------------------------------------------------------------
    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function @{self.name} has no blocks")
        return next(iter(self.blocks.values()))

    def add_block(self, name: str) -> BasicBlock:
        """Create and register a new block with a unique name."""
        if name in self.blocks:
            raise IRError(f"duplicate block name {name!r} in @{self.name}")
        blk = BasicBlock(name)
        blk.parent = self
        self.blocks[name] = blk
        return blk

    def get_block(self, name: str) -> BasicBlock:
        try:
            return self.blocks[name]
        except KeyError:
            raise IRError(f"no block {name!r} in @{self.name}") from None

    def fresh_name(self, hint: str = "t") -> str:
        """Generate a fresh register name (``hint.N``)."""
        self._next_reg += 1
        return f"{hint}.{self._next_reg}"

    def instructions(self):
        """Iterate all instructions in block order."""
        for blk in self.blocks.values():
            yield from blk.instructions

    def arg(self, name: str) -> Argument:
        """Look up a formal argument by name."""
        for a in self.args:
            if a.name == name:
                return a
        raise IRError(f"no argument {name!r} in @{self.name}")

    def static_instruction_count(self) -> int:
        return sum(len(b) for b in self.blocks.values())

    def __repr__(self) -> str:
        sig = ", ".join(f"%{a.name}: {a.type}" for a in self.args)
        return f"<Function @{self.name}({sig}) -> {self.return_type}>"
