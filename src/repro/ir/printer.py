"""Textual IR printer.

The format round-trips through :mod:`repro.ir.parser` and is used by tests,
error messages and the examples. Sample::

    module fft
    global @data : f64[256]

    func @main(%n: i64) -> void {
    entry:
      %x.1 = add i64 %n, 1
      %c.2 = icmp slt i64 %x.1, 10
      condbr %c.2, loop, done
    ...
    }
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.module import Module
from repro.ir.values import Argument, Constant, GlobalArray, Value

__all__ = ["format_operand", "format_instruction", "print_function", "print_module"]


def format_operand(v: Value) -> str:
    """Render one operand with its type prefix."""
    if isinstance(v, Constant):
        if v.type.is_float:
            return f"{v.type} {v.value!r}"
        return f"{v.type} {v.value}"
    if isinstance(v, GlobalArray):
        return f"ptr @{v.name}"
    if isinstance(v, Argument):
        return f"{v.type} %{v.name}"
    if isinstance(v, Instruction):
        return f"{v.type} %{v.name}"
    raise TypeError(f"unprintable operand {v!r}")  # pragma: no cover


def format_instruction(instr: Instruction) -> str:
    """Render one instruction (without trailing newline)."""
    op = instr.opcode
    parts: list[str] = []
    if instr.produces_value:
        parts.append(f"%{instr.name} =")
    if op in ("icmp", "fcmp"):
        parts.append(f"{op} {instr.attrs['pred']}")
    elif op == "fmath":
        parts.append(f"fmath {instr.attrs['fn']}")
    elif op == "alloca":
        parts.append(f"alloca {instr.attrs['elem']} x {instr.attrs['count']}")
    elif op == "call":
        parts.append(f"call {instr.type} @{instr.attrs['callee']}")
    elif op == "br":
        parts.append(f"br {instr.attrs['target']}")
    elif op == "condbr":
        parts.append("condbr")
    elif op == "phi":
        parts.append(f"phi {instr.type}")
    elif op in ("load",):
        parts.append(f"load {instr.type}")
    elif op in ("trunc", "zext", "sext", "fptosi", "fptoui", "sitofp", "uitofp",
                "fpext", "fptrunc"):
        parts.append(f"{op} to {instr.type}")
    else:
        parts.append(op)

    if op == "phi":
        inc = ", ".join(
            f"[{blk}: {format_operand(val)}]" for blk, val in instr.attrs["incoming"]
        )
        parts.append(inc)
    elif op == "condbr":
        parts.append(
            f"{format_operand(instr.operands[0])}, "
            f"{instr.attrs['iftrue']}, {instr.attrs['iffalse']}"
        )
    elif op == "br":
        pass
    elif instr.operands:
        parts.append(", ".join(format_operand(v) for v in instr.operands))

    text = " ".join(p for p in parts if p)
    if instr.origin is not None:
        text += f"  ; dup-of {instr.origin}"
    return text


def print_function(fn: Function) -> str:
    """Render one function."""
    sig = ", ".join(f"%{a.name}: {a.type}" for a in fn.args)
    lines = [f"func @{fn.name}({sig}) -> {fn.return_type} {{"]
    for blk in fn.blocks.values():
        lines.append(f"{blk.name}:")
        for instr in blk.instructions:
            lines.append(f"  {format_instruction(instr)}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    """Render a whole module."""
    lines = [f"module {module.name}"]
    for g in module.globals.values():
        init = ""
        if g.init is not None:
            init = " = [" + ", ".join(repr(x) for x in g.init) + "]"
        lines.append(f"global @{g.name} : {g.elem_type}[{g.size}]{init}")
    for fn in module.functions.values():
        lines.append("")
        lines.append(print_function(fn))
    return "\n".join(lines) + "\n"
