"""Instruction set of the mini-IR.

One concrete :class:`Instruction` class carries all opcodes; the opcode string
plus an ``attrs`` dict (comparison predicate, callee name, phi incomings,
math-function name...) distinguishes behaviour. This keeps decoding for the
interpreter and cloning for the duplication pass uniform.

Instruction identity and provenance
-----------------------------------
``iid``
    A module-unique integer assigned by :meth:`repro.ir.module.Module.finalize`.
    All profiles (cost, benefit, SDC probability) key on iids.
``origin``
    For instructions created by the duplication pass, the iid of the original
    instruction they shadow; ``None`` for first-class program instructions.
    Coverage accounting and incubative analysis operate on origins.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.types import Type, VOID
from repro.ir.values import Value

__all__ = [
    "Instruction",
    "OPCODES",
    "TERMINATORS",
    "SYNC_OPCODES",
    "CMP_PREDICATES",
    "FMATH_FUNCS",
    "INT_BINOPS",
    "FLOAT_BINOPS",
    "CAST_OPS",
]

#: Integer binary ALU operations (both operands and result share one int type).
INT_BINOPS = (
    "add",
    "sub",
    "mul",
    "sdiv",
    "udiv",
    "srem",
    "urem",
    "and",
    "or",
    "xor",
    "shl",
    "lshr",
    "ashr",
)

#: Floating-point binary operations.
FLOAT_BINOPS = ("fadd", "fsub", "fmul", "fdiv")

#: Value casts; attrs carry nothing, the result type defines the target.
CAST_OPS = (
    "trunc",
    "zext",
    "sext",
    "fptosi",
    "fptoui",
    "sitofp",
    "uitofp",
    "fpext",
    "fptrunc",
)

#: Comparison predicates for icmp/fcmp.
CMP_PREDICATES = {
    "icmp": ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"),
    "fcmp": ("oeq", "one", "olt", "ole", "ogt", "oge"),
}

#: Unary math intrinsics available through the ``fmath`` opcode.
FMATH_FUNCS = ("sqrt", "sin", "cos", "exp", "log", "fabs", "floor")

#: Block terminators.
TERMINATORS = ("br", "condbr", "ret")

#: Synchronization points: duplication checks must be flushed before these
#: (function calls and control-flow transfers per the paper, plus stores,
#: which make a possibly-corrupted value externally visible).
SYNC_OPCODES = ("call", "br", "condbr", "ret", "store")

#: The complete opcode set.
OPCODES = (
    *INT_BINOPS,
    *FLOAT_BINOPS,
    *CAST_OPS,
    "icmp",
    "fcmp",
    "select",
    "fmath",
    "alloca",
    "load",
    "store",
    "gep",
    "phi",
    "call",
    "br",
    "condbr",
    "ret",
    "emit",
    "check",
    "checkrange",
)


class Instruction(Value):
    """A single IR instruction.

    Parameters
    ----------
    opcode:
        One of :data:`OPCODES`.
    type_:
        Result type (``VOID`` for non-value-producing instructions).
    operands:
        Operand values in positional order.
    name:
        SSA register name for value-producing instructions.
    attrs:
        Opcode-specific attributes:

        - ``icmp``/``fcmp``: ``pred``
        - ``fmath``: ``fn``
        - ``call``: ``callee`` (function name)
        - ``phi``: ``incoming`` — list of ``(block_name, Value)``
        - ``br``: ``target``; ``condbr``: ``iftrue``/``iffalse``
        - ``alloca``: ``count`` (number of elements)
        - ``check``: ``label`` (diagnostic name of the protected instruction)
        - ``checkrange``: ``label`` — operands are ``[x, lo, hi]`` with
          ``lo``/``hi`` constants; traps if ``x`` is NaN or outside
          ``[lo, hi]`` (invariant detectors mined from golden-run profiles)
    """

    __slots__ = ("opcode", "operands", "name", "attrs", "iid", "origin", "parent")

    def __init__(
        self,
        opcode: str,
        type_: Type,
        operands: list[Value] | None = None,
        name: str | None = None,
        attrs: dict | None = None,
    ) -> None:
        if opcode not in OPCODES:
            raise IRError(f"unknown opcode {opcode!r}")
        super().__init__(type_)
        self.opcode = opcode
        self.operands = list(operands) if operands else []
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.iid: int = -1  # assigned by Module.finalize()
        self.origin: int | None = None  # set by the duplication pass on clones
        self.parent = None  # owning BasicBlock, set on insertion

    # ------------------------------------------------------------------
    @property
    def is_terminator(self) -> bool:
        return self.opcode in TERMINATORS

    @property
    def produces_value(self) -> bool:
        """True if the instruction has a return value a fault can corrupt."""
        return not self.type.is_void

    @property
    def is_sync_point(self) -> bool:
        return self.opcode in SYNC_OPCODES

    def clone(self) -> "Instruction":
        """Shallow-clone: same opcode/type/operands/attrs, fresh identity.

        The clone has no iid and no parent; the duplication pass sets
        ``origin`` on clones it inserts.
        """
        c = Instruction(
            self.opcode,
            self.type,
            list(self.operands),
            name=None,
            attrs=dict(self.attrs),
        )
        return c

    def replace_operand(self, old: Value, new: Value) -> int:
        """Replace every occurrence of ``old`` in operands; returns count."""
        n = 0
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new
                n += 1
        if self.opcode == "phi":
            incoming = self.attrs.get("incoming", [])
            for i, (blk, val) in enumerate(incoming):
                if val is old:
                    incoming[i] = (blk, new)
                    n += 1
        return n

    def __repr__(self) -> str:
        from repro.ir.printer import format_instruction

        try:
            return format_instruction(self)
        except Exception:  # pragma: no cover - printing must never crash repr
            return f"<{self.opcode} iid={self.iid}>"


def make_void_instruction(opcode: str, operands: list[Value], attrs: dict | None = None) -> Instruction:
    """Convenience constructor for void instructions (store/br/ret/emit...)."""
    return Instruction(opcode, VOID, operands, attrs=attrs)
