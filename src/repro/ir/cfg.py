"""Static control-flow graphs.

Step ③ of MINPSID builds a static CFG per program at compile time; the input
search engine then weights its edges/blocks with dynamic execution counts. The
CFG here is module-wide: one node per basic block across all functions, with a
stable *block index* assignment used by the indexed-CFG-list fitness function
(Eq. 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.module import Module

__all__ = ["StaticCFG", "build_cfg"]

BlockId = tuple[str, str]  # (function name, block name)


@dataclass
class StaticCFG:
    """Module-wide static CFG with a stable basic-block indexing."""

    #: Deterministic ordering of blocks; position = block index.
    blocks: list[BlockId] = field(default_factory=list)
    #: Map block -> index into :attr:`blocks`.
    index: dict[BlockId, int] = field(default_factory=dict)
    #: Directed intra-function edges as (src index, dst index).
    edges: list[tuple[int, int]] = field(default_factory=list)
    #: successors[i] = indices of blocks reachable in one step from block i.
    successors: dict[int, list[int]] = field(default_factory=dict)
    #: predecessors[i] = indices with an edge into block i.
    predecessors: dict[int, list[int]] = field(default_factory=dict)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def block_id(self, fn_name: str, block_name: str) -> int:
        return self.index[(fn_name, block_name)]

    def entry_index(self, fn_name: str) -> int:
        """Index of a function's entry block."""
        for i, (f, _) in enumerate(self.blocks):
            if f == fn_name:
                return i
        raise KeyError(fn_name)

    def reachable_from(self, start: int) -> set[int]:
        """Blocks reachable from ``start`` following successor edges."""
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nxt in self.successors.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` (for analysis and debugging)."""
        import networkx as nx

        g = nx.DiGraph()
        for i, (fn, blk) in enumerate(self.blocks):
            g.add_node(i, function=fn, block=blk)
        g.add_edges_from(self.edges)
        return g


def build_cfg(module: Module) -> StaticCFG:
    """Construct the static CFG of a module (③ in the MINPSID workflow).

    Block indexing follows function order then block order, so it is stable
    across runs and shared by all inputs — the property the weighted-CFG
    fitness function relies on.
    """
    cfg = StaticCFG()
    for fn in module.functions.values():
        for blk_name in fn.blocks:
            bid = (fn.name, blk_name)
            cfg.index[bid] = len(cfg.blocks)
            cfg.blocks.append(bid)
    for fn in module.functions.values():
        for blk in fn.blocks.values():
            src = cfg.index[(fn.name, blk.name)]
            for succ in blk.successors():
                dst = cfg.index[(fn.name, succ)]
                cfg.edges.append((src, dst))
                cfg.successors.setdefault(src, []).append(dst)
                cfg.predecessors.setdefault(dst, []).append(src)
    return cfg
