"""Builder: the construction API for IR functions.

Beyond raw instruction emission, the builder offers structured control-flow
helpers (``for_loop``, ``while_loop``, ``if_then``, ``if_then_else``) in the
style of compiler frontends. Loop induction variables and mutable locals are
carried in stack slots (``alloca`` + ``load``/``store``), which mirrors what
clang emits at ``-O0`` and — importantly for this reproduction — makes loads,
stores and address computations first-class fault-injection targets, exactly
as in the paper's LLVM-level experiments.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.errors import IRError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    CAST_OPS,
    CMP_PREDICATES,
    FLOAT_BINOPS,
    FMATH_FUNCS,
    INT_BINOPS,
    Instruction,
)
from repro.ir.module import Module
from repro.ir.types import F64, I1, I64, PTR, Type, VOID
from repro.ir.values import Constant, Value

__all__ = ["Builder"]


class Builder:
    """Stateful instruction builder positioned inside one function."""

    def __init__(self, function: Function, block: BasicBlock | None = None) -> None:
        self.function = function
        if block is None:
            block = (
                function.entry if function.blocks else function.add_block("entry")
            )
        self.block = block

    # ------------------------------------------------------------------
    # Positioning
    # ------------------------------------------------------------------
    def position_at_end(self, block: BasicBlock) -> None:
        """Move the insertion point to the end of ``block``."""
        self.block = block

    def new_block(self, hint: str) -> BasicBlock:
        """Create a uniquely-named block without moving the insertion point."""
        name = hint
        n = 0
        while name in self.function.blocks:
            n += 1
            name = f"{hint}.{n}"
        return self.function.add_block(name)

    # ------------------------------------------------------------------
    # Constants
    # ------------------------------------------------------------------
    def const(self, type_: Type, value: int | float) -> Constant:
        """An immediate of the given type."""
        return Constant(type_, value)

    def i64(self, value: int) -> Constant:
        return Constant(I64, value)

    def f64(self, value: float) -> Constant:
        return Constant(F64, value)

    def true(self) -> Constant:
        return Constant(I1, 1)

    def false(self) -> Constant:
        return Constant(I1, 0)

    # ------------------------------------------------------------------
    # Raw emission
    # ------------------------------------------------------------------
    def _emit(
        self,
        opcode: str,
        type_: Type,
        operands: list[Value],
        attrs: dict | None = None,
        hint: str | None = None,
    ) -> Instruction:
        name = None
        if not type_.is_void:
            name = self.function.fresh_name(hint or opcode)
        instr = Instruction(opcode, type_, operands, name=name, attrs=attrs)
        self.block.append(instr)
        return instr

    # ------------------------------------------------------------------
    # Arithmetic / logic
    # ------------------------------------------------------------------
    def binop(self, opcode: str, a: Value, b: Value) -> Instruction:
        """Emit an integer or float binary operation; types must match."""
        if opcode in INT_BINOPS:
            if not (a.type.is_int and a.type is b.type):
                raise IRError(f"{opcode}: operands must share an int type, got {a.type}/{b.type}")
        elif opcode in FLOAT_BINOPS:
            if not (a.type.is_float and a.type is b.type):
                raise IRError(f"{opcode}: operands must share a float type, got {a.type}/{b.type}")
        else:
            raise IRError(f"{opcode!r} is not a binary opcode")
        return self._emit(opcode, a.type, [a, b])

    # Integer conveniences -------------------------------------------------
    def add(self, a: Value, b: Value) -> Instruction:
        return self.binop("add", a, b)

    def sub(self, a: Value, b: Value) -> Instruction:
        return self.binop("sub", a, b)

    def mul(self, a: Value, b: Value) -> Instruction:
        return self.binop("mul", a, b)

    def sdiv(self, a: Value, b: Value) -> Instruction:
        return self.binop("sdiv", a, b)

    def udiv(self, a: Value, b: Value) -> Instruction:
        return self.binop("udiv", a, b)

    def srem(self, a: Value, b: Value) -> Instruction:
        return self.binop("srem", a, b)

    def urem(self, a: Value, b: Value) -> Instruction:
        return self.binop("urem", a, b)

    def and_(self, a: Value, b: Value) -> Instruction:
        return self.binop("and", a, b)

    def or_(self, a: Value, b: Value) -> Instruction:
        return self.binop("or", a, b)

    def xor(self, a: Value, b: Value) -> Instruction:
        return self.binop("xor", a, b)

    def shl(self, a: Value, b: Value) -> Instruction:
        return self.binop("shl", a, b)

    def lshr(self, a: Value, b: Value) -> Instruction:
        return self.binop("lshr", a, b)

    def ashr(self, a: Value, b: Value) -> Instruction:
        return self.binop("ashr", a, b)

    # Float conveniences ---------------------------------------------------
    def fadd(self, a: Value, b: Value) -> Instruction:
        return self.binop("fadd", a, b)

    def fsub(self, a: Value, b: Value) -> Instruction:
        return self.binop("fsub", a, b)

    def fmul(self, a: Value, b: Value) -> Instruction:
        return self.binop("fmul", a, b)

    def fdiv(self, a: Value, b: Value) -> Instruction:
        return self.binop("fdiv", a, b)

    def fmath(self, fn: str, x: Value) -> Instruction:
        """Unary math intrinsic (sqrt, sin, cos, exp, log, fabs, floor)."""
        if fn not in FMATH_FUNCS:
            raise IRError(f"unknown fmath function {fn!r}")
        if not x.type.is_float:
            raise IRError(f"fmath.{fn} requires a float operand, got {x.type}")
        return self._emit("fmath", x.type, [x], attrs={"fn": fn}, hint=fn)

    # Comparisons ----------------------------------------------------------
    def icmp(self, pred: str, a: Value, b: Value) -> Instruction:
        if pred not in CMP_PREDICATES["icmp"]:
            raise IRError(f"unknown icmp predicate {pred!r}")
        if not ((a.type.is_int or a.type.is_ptr) and a.type is b.type):
            raise IRError(f"icmp: operands must share an int/ptr type, got {a.type}/{b.type}")
        return self._emit("icmp", I1, [a, b], attrs={"pred": pred}, hint="cmp")

    def fcmp(self, pred: str, a: Value, b: Value) -> Instruction:
        if pred not in CMP_PREDICATES["fcmp"]:
            raise IRError(f"unknown fcmp predicate {pred!r}")
        if not (a.type.is_float and a.type is b.type):
            raise IRError(f"fcmp: operands must share a float type, got {a.type}/{b.type}")
        return self._emit("fcmp", I1, [a, b], attrs={"pred": pred}, hint="cmp")

    def select(self, cond: Value, a: Value, b: Value) -> Instruction:
        if cond.type is not I1:
            raise IRError("select condition must be i1")
        if a.type is not b.type:
            raise IRError("select arms must share a type")
        return self._emit("select", a.type, [cond, a, b], hint="sel")

    # Casts ------------------------------------------------------------------
    def cast(self, opcode: str, value: Value, to: Type) -> Instruction:
        if opcode not in CAST_OPS:
            raise IRError(f"{opcode!r} is not a cast opcode")
        return self._emit(opcode, to, [value], hint="cast")

    def sext(self, v: Value, to: Type) -> Instruction:
        return self.cast("sext", v, to)

    def zext(self, v: Value, to: Type) -> Instruction:
        return self.cast("zext", v, to)

    def trunc(self, v: Value, to: Type) -> Instruction:
        return self.cast("trunc", v, to)

    def sitofp(self, v: Value, to: Type = F64) -> Instruction:
        return self.cast("sitofp", v, to)

    def fptosi(self, v: Value, to: Type = I64) -> Instruction:
        return self.cast("fptosi", v, to)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def alloca(self, elem_type: Type, count: int = 1, hint: str = "slot") -> Instruction:
        if count <= 0:
            raise IRError("alloca count must be positive")
        return self._emit("alloca", PTR, [], attrs={"elem": elem_type, "count": count}, hint=hint)

    def load(self, ptr: Value, type_: Type, hint: str = "ld") -> Instruction:
        if not ptr.type.is_ptr:
            raise IRError(f"load requires a pointer operand, got {ptr.type}")
        return self._emit("load", type_, [ptr], hint=hint)

    def store(self, value: Value, ptr: Value) -> Instruction:
        if not ptr.type.is_ptr:
            raise IRError(f"store requires a pointer operand, got {ptr.type}")
        return self._emit("store", VOID, [value, ptr])

    def gep(self, ptr: Value, index: Value, hint: str = "gep") -> Instruction:
        """Pointer plus element index (typed-cell memory; no byte scaling)."""
        if not ptr.type.is_ptr:
            raise IRError(f"gep requires a pointer base, got {ptr.type}")
        if not index.type.is_int:
            raise IRError(f"gep index must be an int, got {index.type}")
        return self._emit("gep", PTR, [ptr, index], hint=hint)

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def br(self, target: BasicBlock) -> Instruction:
        return self._emit("br", VOID, [], attrs={"target": target.name})

    def condbr(self, cond: Value, iftrue: BasicBlock, iffalse: BasicBlock) -> Instruction:
        if cond.type is not I1:
            raise IRError("condbr condition must be i1")
        return self._emit(
            "condbr", VOID, [cond], attrs={"iftrue": iftrue.name, "iffalse": iffalse.name}
        )

    def ret(self, value: Value | None = None) -> Instruction:
        ops = [value] if value is not None else []
        return self._emit("ret", VOID, ops)

    def phi(self, type_: Type, incoming: list[tuple[str, Value]], hint: str = "phi") -> Instruction:
        return self._emit("phi", type_, [v for _, v in incoming],
                          attrs={"incoming": list(incoming)}, hint=hint)

    def call(self, callee: str, args: list[Value], ret_type: Type, hint: str = "call") -> Instruction:
        return self._emit("call", ret_type, list(args), attrs={"callee": callee}, hint=hint)

    def emit_output(self, value: Value) -> Instruction:
        """Append a value to the program's observable output stream."""
        return self._emit("emit", VOID, [value])

    # ------------------------------------------------------------------
    # Structured helpers
    # ------------------------------------------------------------------
    def local(self, type_: Type, init: Value | None = None, hint: str = "var") -> Instruction:
        """Allocate a mutable local slot, optionally storing an initial value."""
        slot = self.alloca(type_, 1, hint=hint)
        if init is not None:
            self.store(init, slot)
        return slot

    def get(self, slot: Value, type_: Type) -> Instruction:
        """Load the current value of a local slot."""
        return self.load(slot, type_)

    def set(self, slot: Value, value: Value) -> Instruction:
        """Store into a local slot."""
        return self.store(value, slot)

    @contextmanager
    def for_loop(self, start: Value, end: Value, step: int = 1, hint: str = "i"):
        """``for i in range(start, end, step)`` over i64 values.

        Yields the induction variable (an i64 value reloaded each iteration).
        The loop test is ``slt`` for positive step and ``sgt`` for negative.
        """
        if step == 0:
            raise IRError("for_loop step must be non-zero")
        slot = self.local(I64, start, hint=f"{hint}.slot")
        header = self.new_block(f"{hint}.head")
        body = self.new_block(f"{hint}.body")
        after = self.new_block(f"{hint}.end")
        self.br(header)
        self.position_at_end(header)
        iv = self.load(slot, I64, hint=hint)
        pred = "slt" if step > 0 else "sgt"
        cond = self.icmp(pred, iv, end)
        self.condbr(cond, body, after)
        self.position_at_end(body)
        yield iv
        # Body code may have moved the insertion point (nested control flow);
        # the increment goes wherever the body left off.
        cur = self.load(slot, I64, hint=f"{hint}.cur")
        nxt = self.add(cur, self.i64(step))
        self.store(nxt, slot)
        self.br(header)
        self.position_at_end(after)

    @contextmanager
    def while_loop(self, cond_fn, hint: str = "while"):
        """``while cond_fn():`` — the callable emits the condition in the header."""
        header = self.new_block(f"{hint}.head")
        body = self.new_block(f"{hint}.body")
        after = self.new_block(f"{hint}.end")
        self.br(header)
        self.position_at_end(header)
        cond = cond_fn()
        if cond.type is not I1:
            raise IRError("while_loop condition must be i1")
        self.condbr(cond, body, after)
        self.position_at_end(body)
        yield
        self.br(header)
        self.position_at_end(after)

    def _close_block(self, target: BasicBlock) -> None:
        """Branch to ``target`` unless the body already terminated (e.g. an
        early ``ret`` inside an ``if_then``)."""
        if not self.block.is_terminated:
            self.br(target)

    @contextmanager
    def if_then(self, cond: Value, hint: str = "if"):
        """``if cond:`` — executes the with-body when cond is true."""
        then = self.new_block(f"{hint}.then")
        after = self.new_block(f"{hint}.end")
        self.condbr(cond, then, after)
        self.position_at_end(then)
        yield
        self._close_block(after)
        self.position_at_end(after)

    @contextmanager
    def if_then_else(self, cond: Value, hint: str = "if"):
        """``if cond: ... else: ...`` — yields a callable that switches to the
        else branch::

            with b.if_then_else(cond) as otherwise:
                ...then code...
                otherwise()
                ...else code...
        """
        then = self.new_block(f"{hint}.then")
        els = self.new_block(f"{hint}.else")
        after = self.new_block(f"{hint}.end")
        self.condbr(cond, then, els)
        self.position_at_end(then)
        state = {"switched": False}

        def otherwise():
            if state["switched"]:
                raise IRError("if_then_else: otherwise() called twice")
            state["switched"] = True
            self._close_block(after)
            self.position_at_end(els)

        yield otherwise
        if not state["switched"]:
            raise IRError("if_then_else: otherwise() was never called")
        self._close_block(after)
        self.position_at_end(after)

    # ------------------------------------------------------------------
    @staticmethod
    def new_function(
        module: Module,
        name: str,
        args: list[tuple[str, Type]],
        ret: Type = VOID,
    ) -> "Builder":
        """Create a function with an entry block and return a builder on it."""
        fn = Function(name, args, ret)
        module.add_function(fn)
        fn.add_block("entry")
        return Builder(fn)
