"""IR value hierarchy: constants, function arguments and global arrays.

``Instruction`` (which is also a :class:`Value` when it produces a result)
lives in :mod:`repro.ir.instructions`.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.types import PTR, Type

__all__ = ["Value", "Constant", "Argument", "GlobalArray"]


class Value:
    """Anything an instruction can use as an operand."""

    __slots__ = ("type",)

    def __init__(self, type_: Type) -> None:
        self.type = type_


class Constant(Value):
    """An immediate of integer or floating type.

    Integers are stored as the *unsigned* bit pattern of their declared
    width; use :func:`repro.util.bitops.to_signed` to read them signed.
    """

    __slots__ = ("value",)

    def __init__(self, type_: Type, value: int | float) -> None:
        super().__init__(type_)
        if type_.is_int:
            self.value = int(value) & type_.mask
        elif type_.is_float:
            self.value = float(value)
        elif type_.is_ptr:
            self.value = int(value) & type_.mask
        else:
            raise IRError(f"cannot build a constant of type {type_}")

    def __repr__(self) -> str:
        return f"{self.type} {self.value}"


class Argument(Value):
    """A formal parameter of a function."""

    __slots__ = ("name", "index")

    def __init__(self, name: str, type_: Type, index: int) -> None:
        super().__init__(type_)
        self.name = name
        self.index = index

    def __repr__(self) -> str:
        return f"{self.type} %{self.name}"


class GlobalArray(Value):
    """A module-level array of a fixed element type and size.

    Globals are how application inputs reach IR programs: the experiment
    harness binds each input's data (grids, graphs, point sets) to globals
    before a run. A global used as an operand evaluates to the pointer to its
    first element.
    """

    __slots__ = ("name", "elem_type", "size", "init")

    def __init__(
        self,
        name: str,
        elem_type: Type,
        size: int,
        init: list[int | float] | None = None,
    ) -> None:
        super().__init__(PTR)
        if size <= 0:
            raise IRError(f"global @{name} must have positive size, got {size}")
        if elem_type.is_void:
            raise IRError(f"global @{name} cannot have void elements")
        if init is not None and len(init) > size:
            raise IRError(
                f"global @{name}: init has {len(init)} elements, size is {size}"
            )
        self.name = name
        self.elem_type = elem_type
        self.size = size
        self.init = list(init) if init is not None else None

    def __repr__(self) -> str:
        return f"@{self.name} : {self.elem_type}[{self.size}]"
