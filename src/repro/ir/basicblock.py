"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.instructions import Instruction

__all__ = ["BasicBlock"]


class BasicBlock:
    """A named basic block owned by a function.

    Instructions are held in execution order; the last instruction must be a
    terminator once the function is finalized. Blocks know their successor
    names (derived from the terminator) which is what the static CFG uses.
    """

    __slots__ = ("name", "instructions", "parent")

    def __init__(self, name: str) -> None:
        self.name = name
        self.instructions: list[Instruction] = []
        self.parent = None  # owning Function

    # ------------------------------------------------------------------
    @property
    def terminator(self) -> Instruction | None:
        """The terminator, or ``None`` if the block is still open."""
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> tuple[str, ...]:
        """Names of successor blocks (empty for ``ret`` or open blocks)."""
        term = self.terminator
        if term is None or term.opcode == "ret":
            return ()
        if term.opcode == "br":
            return (term.attrs["target"],)
        if term.opcode == "condbr":
            return (term.attrs["iftrue"], term.attrs["iffalse"])
        raise IRError(f"unexpected terminator {term.opcode}")  # pragma: no cover

    # ------------------------------------------------------------------
    def append(self, instr: Instruction) -> Instruction:
        """Append an instruction; rejects additions after a terminator."""
        if self.is_terminated:
            raise IRError(
                f"block {self.name!r} is already terminated; cannot append "
                f"{instr.opcode}"
            )
        instr.parent = self
        self.instructions.append(instr)
        return instr

    def insert(self, index: int, instr: Instruction) -> Instruction:
        """Insert an instruction at ``index`` (used by transformation passes)."""
        instr.parent = self
        self.instructions.insert(index, instr)
        return instr

    def index_of(self, instr: Instruction) -> int:
        """Position of ``instr`` in this block (identity comparison)."""
        for i, ins in enumerate(self.instructions):
            if ins is instr:
                return i
        raise IRError(f"instruction not in block {self.name!r}")

    def phis(self) -> list[Instruction]:
        """The (leading) phi instructions of this block."""
        out = []
        for ins in self.instructions:
            if ins.opcode != "phi":
                break
            out.append(ins)
        return out

    def __iter__(self):
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name} ({len(self.instructions)} instrs)>"
