"""``python -m repro`` — see :mod:`repro.cli`."""

import os
import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream consumer (e.g. `... | head`) closed the pipe; exit
        # quietly with the conventional SIGPIPE status instead of a
        # traceback. Redirect stdout first so interpreter shutdown does
        # not raise again while flushing.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        sys.exit(128 + 13)
