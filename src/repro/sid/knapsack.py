"""0-1 knapsack instruction selection.

The paper formulates instruction selection as 0-1 knapsack: items are
instructions, weights are their dynamic cycles, values their benefits, and
the capacity is the protection level × total cycles. Classic SID solves it
greedily by benefit-per-unit-cost ("the most critical instructions (per unit
cost) will be selected"); an exact dynamic program is provided for small
problems and for the ablation that quantifies the greedy gap.
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["greedy_knapsack", "dp_knapsack", "knapsack_select"]


def greedy_knapsack(
    items: list[tuple[int, float, float]], capacity: float
) -> list[int]:
    """Greedy by value density; items are (key, weight, value).

    Zero-weight positive-value items are always taken (protecting them is
    free). The ranking key is exactly ``(-density, key)``: equal-density
    items are consumed in ascending key order regardless of input order or
    Python version (IEEE division and stable sort make the key
    deterministic), so selections — including which of two tied items wins
    the last slack — are bit-reproducible everywhere.
    """
    chosen: list[int] = []
    remaining = capacity
    free = [(k, w, v) for k, w, v in items if w <= 0 and v > 0]
    paid = [(k, w, v) for k, w, v in items if w > 0]
    chosen.extend(k for k, _, _ in free)
    paid.sort(key=lambda t: (-(t[2] / t[1]), t[0]))
    for k, w, v in paid:
        if v <= 0:
            continue
        if w <= remaining:
            chosen.append(k)
            remaining -= w
    return sorted(chosen)


def dp_knapsack(
    items: list[tuple[int, int, float]], capacity: int, max_cells: int = 20_000_000
) -> list[int]:
    """Exact 0-1 knapsack over integer weights (table size guarded)."""
    n = len(items)
    if capacity < 0:
        raise ConfigError("negative knapsack capacity")
    if n * (capacity + 1) > max_cells:
        raise ConfigError(
            f"DP table {n}x{capacity + 1} exceeds {max_cells} cells; "
            "use greedy_knapsack or coarsen weights"
        )
    # Rolling 1-D DP with parent tracking via chosen-bit matrix.
    best = [0.0] * (capacity + 1)
    taken = [[False] * (capacity + 1) for _ in range(n)]
    for i, (_, w, v) in enumerate(items):
        if v <= 0:
            continue
        row = taken[i]
        if w == 0:
            for c in range(capacity + 1):
                best[c] += v
                row[c] = True
            continue
        for c in range(capacity, w - 1, -1):
            cand = best[c - w] + v
            if cand > best[c]:
                best[c] = cand
                row[c] = True
    # Reconstruct.
    chosen: list[int] = []
    c = capacity
    for i in range(n - 1, -1, -1):
        if taken[i][c]:
            key, w, _ = items[i]
            chosen.append(key)
            c -= w
    return sorted(chosen)


def knapsack_select(
    weights: dict[int, float],
    values: dict[int, float],
    capacity: float,
    method: str = "greedy",
) -> list[int]:
    """Select keys maximizing total value under the weight budget.

    ``method`` is ``"greedy"`` (paper's density heuristic, default) or
    ``"dp"`` (exact; weights are rounded to integers first).
    """
    keys = sorted(weights)
    if method == "greedy":
        items = [(k, float(weights[k]), float(values[k])) for k in keys]
        return greedy_knapsack(items, capacity)
    if method == "dp":
        int_items = [(k, int(round(weights[k])), float(values[k])) for k in keys]
        return dp_knapsack(int_items, int(capacity))
    raise ConfigError(f"unknown knapsack method {method!r}")
