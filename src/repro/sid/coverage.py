"""SDC coverage accounting.

*Expected* coverage is what the selection phase promises from its profile;
*measured* coverage is what FI on the protected binary actually shows under a
(possibly different) input:

    coverage = 1 − P_sdc(protected) / P_sdc(unprotected)

i.e. the fraction of the baseline's SDCs the protection mitigated. An input
under which the unprotected program shows no SDCs provides no evidence and
yields ``None`` (the harness skips such inputs, as FI studies do).
"""

from __future__ import annotations

from repro.sid.profiles import CostBenefitProfile

__all__ = ["expected_coverage", "measured_coverage", "coverage_loss"]


def expected_coverage(profile: CostBenefitProfile, selected: list[int]) -> float:
    """Aggregate the selected instructions' share of expected SDC mass."""
    total = profile.total_sdc_mass()
    if total <= 0:
        return 1.0
    covered = sum(profile.sdc_mass(iid) for iid in selected)
    return min(1.0, covered / total)


def measured_coverage(
    unprotected_sdc_prob: float, protected_sdc_prob: float
) -> float | None:
    """Measured coverage from two whole-program campaigns on one input."""
    if unprotected_sdc_prob <= 0.0:
        return None
    return max(0.0, min(1.0, 1.0 - protected_sdc_prob / unprotected_sdc_prob))


def coverage_loss(expected: float, measured: float | None) -> float:
    """Positive when the input failed to meet the expected coverage."""
    if measured is None:
        return 0.0
    return max(0.0, expected - measured)
