"""Selective Instruction Duplication (SID) — the baseline technique.

Implements the classic single-reference-input SID pipeline the paper builds
on (§II-C): per-instruction cost/benefit profiling on the reference input,
0-1 knapsack instruction selection under a protection-level budget, and the
compile-time duplication+check transformation.
"""

from repro.sid.profiles import CostBenefitProfile, build_cost_benefit_profile
from repro.sid.knapsack import knapsack_select, greedy_knapsack, dp_knapsack
from repro.sid.selection import SelectionResult, select_instructions
from repro.sid.duplication import ProtectedModule, duplicate_instructions
from repro.sid.coverage import expected_coverage, measured_coverage
from repro.sid.pipeline import SIDConfig, SIDResult, classic_sid

__all__ = [
    "CostBenefitProfile",
    "build_cost_benefit_profile",
    "knapsack_select",
    "greedy_knapsack",
    "dp_knapsack",
    "SelectionResult",
    "select_instructions",
    "ProtectedModule",
    "duplicate_instructions",
    "expected_coverage",
    "measured_coverage",
    "SIDConfig",
    "SIDResult",
    "classic_sid",
]
