"""The duplication + check code transformation (⑨ in Fig. 4).

For every selected instruction *D* the pass inserts a clone *D_dup*
immediately after *D* (a transient fault affects one instruction at a time,
so the immediate repetition is fault-free) and a ``check D, D_dup``
comparison *before the next synchronization point* — a function call, a
store, or a control-flow transfer — matching Fig. 1(c) of the paper. At
runtime a mismatch raises :class:`~repro.errors.DetectedError`, which the FI
layer classifies as a Detected outcome.

The transformation itself now lives in :mod:`repro.detectors.transform` as
the "dup" plan kind of the generalized multi-detector pass; this module
re-exports it so the classic-SID entry point, its imports and its behaviour
are unchanged — an all-duplication plan and this function share one code
path, which is what makes them byte-identical by construction.
"""

from __future__ import annotations

from repro.detectors.transform import ProtectedModule, duplicate_instructions

__all__ = ["ProtectedModule", "duplicate_instructions"]
