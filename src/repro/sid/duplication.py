"""The duplication + check code transformation (⑨ in Fig. 4).

For every selected instruction *D* the pass inserts a clone *D_dup*
immediately after *D* (a transient fault affects one instruction at a time,
so the immediate repetition is fault-free) and a ``check D, D_dup``
comparison *before the next synchronization point* — a function call, a
store, or a control-flow transfer — matching Fig. 1(c) of the paper. At
runtime a mismatch raises :class:`~repro.errors.DetectedError`, which the FI
layer classifies as a Detected outcome.

The transformation works on a clone of the input module and re-finalizes it
(iids are recomputed). The returned :class:`ProtectedModule` carries the
old→new iid map and each clone's provenance so analyses can keep attributing
results to original-program instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.ir.instructions import Instruction
from repro.ir.module import Module
from repro.ir.types import VOID

__all__ = ["ProtectedModule", "duplicate_instructions"]


@dataclass
class ProtectedModule:
    """A protected program plus the bookkeeping to reason about it."""

    module: Module
    #: Original iid -> iid in the protected module (original instructions).
    iid_map: dict[int, int]
    #: Original iid -> iid of its duplicate in the protected module.
    dup_map: dict[int, int]
    #: Number of check instructions inserted.
    checks: int = 0
    #: The original-module iids that were protected.
    protected_iids: list[int] = field(default_factory=list)

    def origin_of(self, new_iid: int) -> int | None:
        """Map a protected-module iid back to the original-module iid.

        Duplicate instructions map to the instruction they shadow; check
        instructions map to ``None``.
        """
        instr = self.module.instruction(new_iid)
        if instr.opcode == "check":
            return None
        if instr.origin is not None:
            return instr.origin
        return self._reverse().get(new_iid)

    def _reverse(self) -> dict[int, int]:
        rev = getattr(self, "_rev_cache", None)
        if rev is None:
            rev = {new: old for old, new in self.iid_map.items()}
            object.__setattr__(self, "_rev_cache", rev)
        return rev


def duplicate_instructions(
    module: Module,
    selected_iids: list[int],
    check_placement: str = "sync",
) -> ProtectedModule:
    """Clone ``module`` and protect ``selected_iids``.

    ``check_placement`` is ``"sync"`` (flush checks right before the next
    synchronization point, the paper's placement) or ``"immediate"`` (check
    directly after the duplicate — the ablation variant).
    """
    if check_placement not in ("sync", "immediate"):
        raise ConfigError(f"unknown check placement {check_placement!r}")
    if not module.finalized:
        module.finalize()
    selected = set(selected_iids)
    unknown = [i for i in selected if i >= module.instruction_count()]
    if unknown:
        raise ConfigError(f"selected iids out of range: {unknown}")
    for iid in selected:
        if not module.instruction(iid).produces_value:
            raise ConfigError(f"iid {iid} produces no value; cannot duplicate")

    clone = module.clone()
    # The deepcopy preserves iid fields, so instructions are addressable by
    # their original iids until we re-finalize at the end.
    old_iids: dict[int, Instruction] = {}
    for fn in clone.functions.values():
        for instr in fn.instructions():
            old_iids[instr.iid] = instr

    checks = 0
    for fn in clone.functions.values():
        for blk in fn.blocks.values():
            new_seq: list[Instruction] = []
            pending: list[tuple[Instruction, Instruction]] = []

            def flush() -> None:
                nonlocal checks
                for orig, dup in pending:
                    chk = Instruction(
                        "check",
                        VOID,
                        [orig, dup],
                        attrs={"label": f"chk.{orig.iid}"},
                    )
                    chk.origin = orig.iid
                    chk.parent = blk
                    new_seq.append(chk)
                    checks += 1
                pending.clear()

            for instr in blk.instructions:
                if instr.is_sync_point and pending:
                    flush()
                new_seq.append(instr)
                if instr.iid in selected:
                    dup = instr.clone()
                    dup.name = fn.fresh_name(f"dup.{instr.iid}")
                    dup.origin = instr.iid
                    dup.parent = blk
                    new_seq.append(dup)
                    if check_placement == "immediate":
                        chk = Instruction(
                            "check",
                            VOID,
                            [instr, dup],
                            attrs={"label": f"chk.{instr.iid}"},
                        )
                        chk.origin = instr.iid
                        chk.parent = blk
                        new_seq.append(chk)
                        checks += 1
                    else:
                        pending.append((instr, dup))
            # A block always ends in a terminator (a sync point), so pending
            # pairs are flushed before it by the loop above; be defensive for
            # malformed blocks anyway.
            if pending:  # pragma: no cover - terminator flush handles this
                flush()
            blk.instructions = new_seq

    clone.finalized = False
    clone.finalize()

    iid_map: dict[int, int] = {}
    dup_map: dict[int, int] = {}
    for fn in clone.functions.values():
        for instr in fn.instructions():
            if instr.origin is not None and instr.opcode != "check":
                dup_map[instr.origin] = instr.iid
    for old, obj in old_iids.items():
        iid_map[old] = obj.iid
    return ProtectedModule(
        module=clone,
        iid_map=iid_map,
        dup_map=dup_map,
        checks=checks,
        protected_iids=sorted(selected),
    )
