"""End-to-end classic SID (the paper's baseline technique).

Given a module and its *reference input*, measure cost and benefit per
instruction (①②), select under the protection level, transform, and report
the expected coverage — exactly the workflow existing SID studies use with a
single input.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.module import Module
from repro.obs.timers import Stopwatch
from repro.sid.duplication import ProtectedModule, duplicate_instructions
from repro.sid.profiles import CostBenefitProfile, build_profile_from_source
from repro.sid.selection import SelectionResult, select_instructions
from repro.vm.interpreter import Program
from repro.vm.profiler import profile_run

__all__ = ["SIDConfig", "SIDResult", "classic_sid"]


@dataclass(frozen=True)
class SIDConfig:
    """Knobs of the classic SID pipeline."""

    #: Fraction of total dynamic cycles allowed for duplication.
    protection_level: float = 0.5
    #: Faults per static instruction in the benefit measurement.
    per_instruction_trials: int = 20
    #: Master seed of the benefit campaign.
    seed: int = 2022
    #: Knapsack solver ("greedy" per the paper, or "dp").
    knapsack_method: str = "greedy"
    #: Check placement: "sync" per the paper, "immediate" (the ablation),
    #: or "store" (verify only at the next in-block store — the zoo's
    #: store-only detector; see :mod:`repro.detectors`).
    check_placement: str = "sync"
    #: Output comparison tolerances (per-app SDC criterion).
    rel_tol: float = 0.0
    abs_tol: float = 0.0
    #: Process fan-out for FI campaigns (0/1 = serial).
    workers: int | None = 0
    #: Where SDC probabilities come from: "fi" (inject — the paper's
    #: method), "model" (static prediction), or "hybrid" (predict, verify
    #: near the knapsack cut).
    profile_source: str = "fi"


@dataclass
class SIDResult:
    """Everything classic SID produces for one program."""

    protected: ProtectedModule
    selection: SelectionResult
    profile: CostBenefitProfile = field(repr=False)
    #: Phase breakdown of the pipeline run (same phases as MINPSID's, minus
    #: the search engine — that is the baseline's whole point).
    stopwatch: Stopwatch = None

    @property
    def expected_coverage(self) -> float:
        return self.selection.expected_coverage


def classic_sid(
    module: Module,
    args: list | None,
    bindings: dict[str, list] | None,
    config: SIDConfig = SIDConfig(),
) -> SIDResult:
    """Run the full baseline SID pipeline on the reference input."""
    sw = Stopwatch()
    program = Program(module)
    with sw.phase("per_inst_fi_ref"):
        dyn = profile_run(program, args=args, bindings=bindings)
        profile = build_profile_from_source(
            program,
            args,
            bindings,
            source=config.profile_source,
            trials_per_instruction=config.per_instruction_trials,
            seed=config.seed,
            rel_tol=config.rel_tol,
            abs_tol=config.abs_tol,
            workers=config.workers,
            protection_levels=(config.protection_level,),
            dyn_profile=dyn,
        )
    with sw.phase("selection"):
        selection = select_instructions(
            profile, config.protection_level, method=config.knapsack_method
        )
    with sw.phase("transform"):
        protected = duplicate_instructions(
            module, selection.selected, check_placement=config.check_placement
        )
    return SIDResult(
        protected=protected, selection=selection, profile=profile, stopwatch=sw
    )
