"""Cost/benefit profiles — Equations (1) and (2) of the paper.

For every fault-injectable instruction *i* under a given input:

- ``cost_i``   = dynamic cycles of *i* / total dynamic cycles  (Eq. 1)
- ``benefit_i`` = SDC probability of *i* × cost_i              (Eq. 2)

The SDC probability comes from a per-instruction FI campaign; the cycles from
a profiled golden run. The knapsack optimizes benefit under a cycle budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fi.campaign import PerInstructionResult
from repro.fi.faultmodel import injectable_iids
from repro.ir.module import Module
from repro.vm.profiler import DynamicProfile

__all__ = ["CostBenefitProfile", "build_cost_benefit_profile"]


@dataclass
class CostBenefitProfile:
    """Per-instruction cost/benefit map for one (program, input) pair."""

    #: iids eligible for duplication (injectable instructions).
    iids: list[int]
    #: Eq. 1 cost per iid (fraction of total cycles).
    cost: dict[int, float]
    #: Absolute dynamic cycles per iid (the knapsack weight).
    cycles: dict[int, int]
    #: Dynamic execution count per iid.
    counts: dict[int, int]
    #: Measured SDC probability per iid.
    sdc_prob: dict[int, float]
    #: Eq. 2 benefit per iid.
    benefit: dict[int, float] = field(default_factory=dict)
    #: Total dynamic cycles of the run.
    total_cycles: int = 0

    def __post_init__(self) -> None:
        if not self.benefit:
            self.benefit = {
                iid: self.sdc_prob[iid] * self.cost[iid] for iid in self.iids
            }

    def sdc_mass(self, iid: int) -> float:
        """Expected SDC contribution of an instruction: P(sdc|hit) × hits.

        Faults land on instructions proportionally to their dynamic instance
        counts, so this weight is what coverage aggregation uses.
        """
        return self.sdc_prob.get(iid, 0.0) * self.counts.get(iid, 0)

    def total_sdc_mass(self) -> float:
        return sum(self.sdc_mass(iid) for iid in self.iids)

    def with_benefits(self, new_benefit: dict[int, float]) -> "CostBenefitProfile":
        """Copy with some benefits replaced (MINPSID re-prioritization ⑧)."""
        merged = dict(self.benefit)
        merged.update(new_benefit)
        return CostBenefitProfile(
            iids=list(self.iids),
            cost=dict(self.cost),
            cycles=dict(self.cycles),
            counts=dict(self.counts),
            sdc_prob=dict(self.sdc_prob),
            benefit=merged,
            total_cycles=self.total_cycles,
        )


def build_cost_benefit_profile(
    module: Module,
    dyn_profile: DynamicProfile,
    fi_result: PerInstructionResult,
) -> CostBenefitProfile:
    """Combine a dynamic profile and a per-instruction FI campaign (SID ①②)."""
    iids = injectable_iids(module)
    total = dyn_profile.total_cycles or 1
    cost = {iid: dyn_profile.instr_cycles[iid] / total for iid in iids}
    cycles = {iid: dyn_profile.instr_cycles[iid] for iid in iids}
    counts = {iid: dyn_profile.instr_counts[iid] for iid in iids}
    sdc = {iid: fi_result.sdc_probability(iid) for iid in iids}
    return CostBenefitProfile(
        iids=iids,
        cost=cost,
        cycles=cycles,
        counts=counts,
        sdc_prob=sdc,
        total_cycles=dyn_profile.total_cycles,
    )
