"""Cost/benefit profiles — Equations (1) and (2) of the paper.

For every fault-injectable instruction *i* under a given input:

- ``cost_i``   = dynamic cycles of *i* / total dynamic cycles  (Eq. 1)
- ``benefit_i`` = SDC probability of *i* × cost_i              (Eq. 2)

The SDC probability comes from a per-instruction FI campaign; the cycles from
a profiled golden run. The knapsack optimizes benefit under a cycle budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fi.campaign import PerInstructionResult
from repro.fi.faultmodel import injectable_iids
from repro.ir.module import Module
from repro.vm.profiler import DynamicProfile

__all__ = [
    "CostBenefitProfile",
    "build_cost_benefit_profile",
    "build_profile_from_source",
    "PROFILE_SOURCES",
]

#: Recognized values of the ``--profile-source`` knob.
PROFILE_SOURCES = ("fi", "model", "hybrid")


@dataclass
class CostBenefitProfile:
    """Per-instruction cost/benefit map for one (program, input) pair."""

    #: iids eligible for duplication (injectable instructions).
    iids: list[int]
    #: Eq. 1 cost per iid (fraction of total cycles).
    cost: dict[int, float]
    #: Absolute dynamic cycles per iid (the knapsack weight).
    cycles: dict[int, int]
    #: Dynamic execution count per iid.
    counts: dict[int, int]
    #: Measured SDC probability per iid.
    sdc_prob: dict[int, float]
    #: Eq. 2 benefit per iid.
    benefit: dict[int, float] = field(default_factory=dict)
    #: Total dynamic cycles of the run.
    total_cycles: int = 0
    #: How the SDC probabilities were obtained: ``"fi"`` (injection),
    #: ``"model"`` (static prediction), or ``"hybrid"`` (predict-then-verify).
    source: str = "fi"
    #: Hybrid provenance per iid: ``"fi"`` where trials were spent,
    #: ``"model"`` where the prediction was kept. Empty for pure profiles.
    provenance: dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.benefit:
            self.benefit = {
                iid: self.sdc_prob[iid] * self.cost[iid] for iid in self.iids
            }

    def sdc_mass(self, iid: int) -> float:
        """Expected SDC contribution of an instruction: P(sdc|hit) × hits.

        Faults land on instructions proportionally to their dynamic instance
        counts, so this weight is what coverage aggregation uses.
        """
        return self.sdc_prob.get(iid, 0.0) * self.counts.get(iid, 0)

    def total_sdc_mass(self) -> float:
        return sum(self.sdc_mass(iid) for iid in self.iids)

    def with_benefits(self, new_benefit: dict[int, float]) -> "CostBenefitProfile":
        """Copy with some benefits replaced (MINPSID re-prioritization ⑧)."""
        merged = dict(self.benefit)
        merged.update(new_benefit)
        return CostBenefitProfile(
            iids=list(self.iids),
            cost=dict(self.cost),
            cycles=dict(self.cycles),
            counts=dict(self.counts),
            sdc_prob=dict(self.sdc_prob),
            benefit=merged,
            total_cycles=self.total_cycles,
            source=self.source,
            provenance=dict(self.provenance),
        )


def build_cost_benefit_profile(
    module: Module,
    dyn_profile: DynamicProfile,
    fi_result: PerInstructionResult,
    source: str = "fi",
    provenance: dict[int, str] | None = None,
) -> CostBenefitProfile:
    """Combine a dynamic profile and per-instruction SDC probabilities.

    ``fi_result`` is duck-typed: a :class:`PerInstructionResult` from an FI
    campaign (SID ①②), a :class:`repro.analysis.model.PredictedResult` from
    the static model, or a hybrid merge — anything exposing
    ``sdc_probability(iid)``. ``source``/``provenance`` label where the
    probabilities came from and travel with the profile into results.
    """
    iids = injectable_iids(module)
    total = dyn_profile.total_cycles or 1
    cost = {iid: dyn_profile.instr_cycles[iid] / total for iid in iids}
    cycles = {iid: dyn_profile.instr_cycles[iid] for iid in iids}
    counts = {iid: dyn_profile.instr_counts[iid] for iid in iids}
    sdc = {iid: fi_result.sdc_probability(iid) for iid in iids}
    return CostBenefitProfile(
        iids=iids,
        cost=cost,
        cycles=cycles,
        counts=counts,
        sdc_prob=sdc,
        total_cycles=dyn_profile.total_cycles,
        source=source,
        provenance=dict(provenance) if provenance else {},
    )


def build_profile_from_source(
    program,
    args: list | None,
    bindings: dict[str, list] | None,
    source: str = "fi",
    trials_per_instruction: int = 20,
    seed: int = 2022,
    rel_tol: float = 0.0,
    abs_tol: float = 0.0,
    workers: int | None = 0,
    protection_levels: tuple[float, ...] = (0.3, 0.5, 0.7),
    verify_margin: float = 0.3,
    dyn_profile: DynamicProfile | None = None,
) -> CostBenefitProfile:
    """One cost/benefit profile, by any of the three SDC-probability sources.

    ``source`` selects how probabilities are obtained:

    - ``"fi"``     — a full per-instruction Monte-Carlo campaign (the
      paper's method, and the ground truth);
    - ``"model"``  — the static error-propagation model only
      (:mod:`repro.analysis`): zero injections, milliseconds;
    - ``"hybrid"`` — model everywhere, FI verification for instructions
      near the knapsack cut at the given ``protection_levels``.

    All three share the golden run (``dyn_profile`` may be passed to skip
    re-profiling) and return a :class:`CostBenefitProfile` whose
    ``source``/``provenance`` record what produced each probability.
    """
    from repro.errors import ConfigError
    from repro.fi.campaign import (
        run_model_guided_campaign,
        run_per_instruction_campaign,
    )
    from repro.vm.profiler import profile_run

    if source not in PROFILE_SOURCES:
        raise ConfigError(
            f"unknown profile source {source!r}; expected one of "
            f"{', '.join(PROFILE_SOURCES)}"
        )
    module = program.module
    dyn = dyn_profile
    if dyn is None:
        dyn = profile_run(program, args=args, bindings=bindings)
    if source == "fi":
        fi = run_per_instruction_campaign(
            program,
            trials_per_instruction=trials_per_instruction,
            seed=seed,
            args=args,
            bindings=bindings,
            rel_tol=rel_tol,
            abs_tol=abs_tol,
            workers=workers,
            profile=dyn,
        )
        return build_cost_benefit_profile(module, dyn, fi, source="fi")
    if source == "model":
        from repro.analysis.model import predict_sdc_probabilities

        predicted = predict_sdc_probabilities(module, dyn, rel_tol=rel_tol)
        return build_cost_benefit_profile(
            module,
            dyn,
            predicted,
            source="model",
            provenance={iid: "model" for iid in predicted.sdc_prob},
        )
    hybrid = run_model_guided_campaign(
        program,
        trials_per_instruction=trials_per_instruction,
        seed=seed,
        args=args,
        bindings=bindings,
        rel_tol=rel_tol,
        abs_tol=abs_tol,
        workers=workers,
        profile=dyn,
        protection_levels=protection_levels,
        verify_margin=verify_margin,
    )
    return build_cost_benefit_profile(
        module, dyn, hybrid, source="hybrid", provenance=hybrid.provenance
    )
