"""Instruction selection (⑨-adjacent step shared by SID and MINPSID).

Given a cost/benefit profile and a protection level (the fraction of total
dynamic cycles allowed to be duplicated), pick the instruction set and report
the technique's *expected* SDC coverage — the number developers use to judge
whether the protected application meets its reliability target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.obs.core import current as _obs_current
from repro.sid.knapsack import knapsack_select
from repro.sid.profiles import CostBenefitProfile

__all__ = ["SelectionResult", "select_instructions"]


@dataclass
class SelectionResult:
    """Outcome of one instruction-selection run."""

    #: iids chosen for duplication (original-module iids).
    selected: list[int]
    #: The protection level the knapsack was budgeted for.
    protection_level: float
    #: Expected SDC coverage aggregated from the profile (see Eq. text §II-C).
    expected_coverage: float
    #: Fraction of total dynamic cycles the selected set actually occupies.
    used_budget: float
    #: The profile used (kept for re-prioritization and reporting).
    profile: CostBenefitProfile = field(repr=False, default=None)


def select_instructions(
    profile: CostBenefitProfile,
    protection_level: float,
    method: str = "greedy",
) -> SelectionResult:
    """Run the knapsack at the given protection level.

    ``protection_level`` ∈ (0, 1]; the capacity is that fraction of the
    profiled total dynamic cycles.
    """
    if not 0.0 < protection_level <= 1.0:
        raise ConfigError(f"protection level must be in (0,1], got {protection_level}")
    capacity = protection_level * profile.total_cycles
    weights = {iid: float(profile.cycles[iid]) for iid in profile.iids}
    values = {iid: profile.benefit[iid] for iid in profile.iids}
    selected = knapsack_select(weights, values, capacity, method=method)

    total_mass = profile.total_sdc_mass()
    covered_mass = sum(profile.sdc_mass(iid) for iid in selected)
    expected = covered_mass / total_mass if total_mass > 0 else 1.0
    used = (
        sum(profile.cycles[iid] for iid in selected) / profile.total_cycles
        if profile.total_cycles
        else 0.0
    )
    t = _obs_current()
    if t is not None:
        t.count("sid.selections")
        t.emit(
            "sid.selection",
            {
                "method": method,
                "protection_level": protection_level,
                "n_candidates": len(profile.iids),
                "n_selected": len(selected),
                "expected_coverage": expected,
                "used_budget": used,
            },
        )
    return SelectionResult(
        selected=selected,
        protection_level=protection_level,
        expected_coverage=expected,
        used_budget=used,
        profile=profile,
    )
