"""MINPSID reproduction: input-aware selective instruction duplication.

A from-scratch Python reproduction of *"Mitigating Silent Data Corruptions in
HPC Applications across Multiple Program Inputs"* (SC'22): a typed mini-IR
and interpreter stand in for LLVM, an LLFI-style bit-flip injector drives the
Monte-Carlo campaigns, the paper's 11 benchmarks are re-implemented against
the IR, and the SID baseline plus the MINPSID pipeline (weighted-CFG-guided
GA input search, incubative-instruction re-prioritization) run end to end.

Quick start::

    from repro import get_app, classic_sid, minpsid, SIDConfig, MINPSIDConfig

    app = get_app("pathfinder")
    args, bindings = app.encode(app.reference_input)
    baseline = classic_sid(app.module, args, bindings, SIDConfig(0.5))
    hardened = minpsid(app, MINPSIDConfig(protection_level=0.5))

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the drivers
that regenerate every table and figure of the paper.
"""

from repro.apps import all_app_names, get_app
from repro.cache import CampaignCache, cache_scope
from repro.fi import run_campaign, run_per_instruction_campaign
from repro.ir import Builder, Module, parse_module, print_module
from repro.minpsid import MINPSIDConfig, MINPSIDResult, minpsid
from repro.sid import SIDConfig, SIDResult, classic_sid
from repro.vm import FaultSpec, Program, profile_run

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "get_app",
    "all_app_names",
    "Module",
    "Builder",
    "print_module",
    "parse_module",
    "Program",
    "FaultSpec",
    "profile_run",
    "run_campaign",
    "run_per_instruction_campaign",
    "CampaignCache",
    "cache_scope",
    "SIDConfig",
    "SIDResult",
    "classic_sid",
    "MINPSIDConfig",
    "MINPSIDResult",
    "minpsid",
]
