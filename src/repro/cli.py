"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``apps``
    List the registered benchmarks (Table I).
``run <app>``
    Golden-run a benchmark on its reference input and print the output.
``inject <app>`` (alias: ``fi``)
    Whole-program FI campaign on the unprotected benchmark.
``protect <app>``
    Protect with SID or MINPSID, report selection/expected coverage, and
    optionally evaluate measured coverage across random inputs.
``analyze <app>``
    Static error-propagation analysis: predicted per-instruction SDC
    probabilities with no injections; ``--validate`` additionally scores
    the predictions against an FI ground-truth sweep.
``ir <app>``
    Print a benchmark's textual IR.
``fleet run``
    Simulate a fleet of VM hosts (a seeded minority carrying sticky
    per-opcode fault signatures) under one resilience policy and report
    SDC escapes, quarantines, and throughput cost.
``fleet sweep``
    Run the same fleet under the lax→paranoid policy ladder and print the
    escape-rate vs. throughput-cost tradeoff table.
``obs report <trace.jsonl>``
    Render the phase/campaign/counters report of a recorded telemetry trace.
``obs fleet <trace.jsonl>``
    Fleet escape-rate/quarantine report from a trace recorded during
    ``fleet run``/``fleet sweep``.
``obs export <trace.jsonl>``
    Convert a trace's span graph to Chrome trace-event JSON (loadable in
    Perfetto / ``chrome://tracing``).
``obs flame <trace.jsonl>``
    Print semicolon-folded guest stacks with cycle weights (flamegraph.pl /
    speedscope input).
``obs hotspot <trace.jsonl>``
    Guest hotspot tables: exclusive cycles per IR function, hottest
    instructions, dynamic opcode mix, batch-engine divergence sites.
``obs trend [history-dir]``
    Sparkline perf trends from an append-only bench history; exits nonzero
    when any tracked key regressed vs its reference band or rolling baseline.
``cache stats|clear|verify``
    Inspect or maintain a campaign-result cache directory.
``serve``
    Run the campaign fabric service: accept SUBMIT requests over TCP,
    dedup through the campaign cache, stream progress back (docs/FABRIC.md).
``submit <app>``
    Submit a campaign request to a running ``repro serve`` and stream its
    progress/result.

Every command accepts the observability flags: ``--trace PATH`` records a
JSONL telemetry trace, ``--progress`` prints heartbeat lines (with ETA) to
stderr, ``--dashboard`` repaints a live status panel in place of the
heartbeats, and ``-v``/``--log-level`` control diagnostic logging.
Diagnostics always go to stderr; machine-readable command output stays on
stdout.

``inject`` and ``protect`` accept ``--profile-source={fi,model,hybrid}`` to
swap injected SDC probabilities for statically predicted (or FI-verified
hybrid) ones. Campaign commands (``inject``/``fi``, ``protect``, ``analyze``)
additionally accept
``--cache-dir PATH`` (reuse bit-identical campaign results persisted there;
defaults to ``REPRO_CACHE_DIR`` when set) and ``--no-cache`` (force
recomputation even when the environment names a cache).

The CLI wraps the same public API the examples use; it exists so a user can
poke at the system without writing a script.
"""

from __future__ import annotations

import argparse
import sys

from repro.apps import all_app_names, get_app
from repro.cache.active import CACHE_DIR_ENV, cache_scope, store_for
from repro.errors import HarnessError
from repro.exp.report import render_table1
from repro.exp.runner import generate_eval_inputs
from repro.fi.campaign import run_campaign
from repro.ir.printer import print_module
from repro.minpsid.ga import GAConfig
from repro.minpsid.pipeline import MINPSIDConfig, minpsid
from repro.minpsid.search import InputSearchConfig
from repro.obs.core import session
from repro.obs.log import LEVELS, configure_logging, get_logger
from repro.sid.coverage import measured_coverage
from repro.sid.pipeline import SIDConfig, classic_sid
from repro.sid.profiles import PROFILE_SOURCES
from repro.vm.interpreter import Program

__all__ = ["main", "build_parser"]

log = get_logger("cli")


def _interval(raw: str):
    """Parse ``--checkpoint-interval``: ``auto`` or a step count."""
    if raw.lower() == "auto":
        return "auto"
    try:
        value = int(raw)
    except ValueError as e:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {raw!r}"
        ) from e
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"interval must be >= 1, got {value}"
        )
    return value


def obs_flags() -> argparse.ArgumentParser:
    """Common observability flags, shared by every subcommand as a parent."""
    common = argparse.ArgumentParser(add_help=False)
    g = common.add_argument_group("observability")
    g.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="diagnostic logging to stderr (-v info, -vv debug)",
    )
    g.add_argument(
        "--log-level", choices=LEVELS, default=None,
        help="explicit log level (overrides -v)",
    )
    g.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a JSONL telemetry trace to PATH",
    )
    g.add_argument(
        "--progress", action="store_true",
        help="print campaign heartbeat lines (with ETA) to stderr",
    )
    g.add_argument(
        "--dashboard", action="store_true",
        help="repaint a live status panel (throughput, workers, cache, "
        "batch engine) on stderr instead of heartbeat lines; implies "
        "--progress and degrades to appended blocks on non-TTY streams",
    )
    return common


def cache_flags() -> argparse.ArgumentParser:
    """Campaign-cache flags, shared by the campaign-running subcommands."""
    common = argparse.ArgumentParser(add_help=False)
    g = common.add_argument_group("campaign cache")
    g.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="reuse bit-identical campaign results persisted under PATH "
        f"(default: the {CACHE_DIR_ENV} environment, else no caching)",
    )
    g.add_argument(
        "--no-cache", action="store_true",
        help="recompute every campaign, ignoring any configured cache",
    )
    return common


def _cache_spec(args):
    """Map the cache flags to a :func:`repro.cache.cache_scope` spec."""
    if getattr(args, "no_cache", False):
        return False
    return getattr(args, "cache_dir", None)


def engine_flags() -> argparse.ArgumentParser:
    """Trial-executor flags, shared by the campaign-running subcommands."""
    from repro.vm.batch import BATCH_SIZE_ENV, ENGINE_ENV, ENGINES

    common = argparse.ArgumentParser(add_help=False)
    g = common.add_argument_group("trial executor")
    g.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="'batch' vectorizes trials in lockstep over numpy columns — "
        "bit-identical outcomes, much higher throughput "
        f"(default: {ENGINE_ENV} env, else scalar)",
    )
    g.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="trials per lockstep batch with --engine=batch "
        f"(default: {BATCH_SIZE_ENV} env, else the engine default)",
    )
    return common


def fabric_flags() -> argparse.ArgumentParser:
    """Dispatch-fabric flags, shared by the campaign-running subcommands."""
    from repro.fabric.harness import ADDR_ENV, TRANSPORT_ENV, TRANSPORTS

    common = argparse.ArgumentParser(add_help=False)
    g = common.add_argument_group("dispatch fabric")
    g.add_argument(
        "--transport", choices=TRANSPORTS, default=None,
        help="how campaign chunks reach workers: 'local' keeps the "
        "in-host process pool; 'inproc'/'socketpair'/'tcp' dispatch over "
        "the wire protocol of docs/FABRIC.md — bit-identical outcomes "
        f"either way (default: {TRANSPORT_ENV} env, else local)",
    )
    g.add_argument(
        "--adapters", metavar="HOST:PORT,...", default=None,
        help="TCP adapter endpoints for --transport=tcp "
        f"(default: the {ADDR_ENV} environment)",
    )
    return common


def supervisor_flags() -> argparse.ArgumentParser:
    """Harness-supervision flags, shared by campaign-running subcommands."""
    from repro.util.supervisor import MAX_RETRIES_ENV, TASK_TIMEOUT_ENV

    common = argparse.ArgumentParser(add_help=False)
    g = common.add_argument_group("harness supervision")
    g.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="re-submit a failed worker chunk up to N times before a typed "
        f"harness error surfaces (default: {MAX_RETRIES_ENV} env, else 2)",
    )
    g.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-chunk wall-clock deadline; a hung worker past it is "
        f"killed and retried (default: {TASK_TIMEOUT_ENV} env, else off)",
    )
    return common


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)
    common = obs_flags()
    caching = cache_flags()
    supervising = supervisor_flags()
    engines = engine_flags()
    fabrics = fabric_flags()

    sub.add_parser(
        "apps", help="list the registered benchmarks", parents=[common]
    )

    p_run = sub.add_parser("run", help="golden-run a benchmark", parents=[common])
    p_run.add_argument("app", choices=all_app_names())

    p_ir = sub.add_parser(
        "ir", help="print a benchmark's textual IR", parents=[common]
    )
    p_ir.add_argument("app", choices=all_app_names())

    p_inj = sub.add_parser(
        "inject", aliases=["fi"],
        parents=[common, caching, supervising, engines, fabrics],
        help="FI campaign on the unprotected app",
    )
    p_inj.add_argument("app", choices=all_app_names())
    p_inj.add_argument("--faults", type=int, default=500)
    p_inj.add_argument("--seed", type=int, default=2022)
    p_inj.add_argument(
        "--workers", type=int, default=None,
        help="process fan-out (default: REPRO_WORKERS env or serial)",
    )
    p_inj.add_argument(
        "--checkpoint-interval", type=_interval, default=None, metavar="N|auto",
        help="resume trials from golden snapshots every N instructions "
        "('auto' picks the interval heuristic; default: cold replay)",
    )
    p_inj.add_argument(
        "--profile-source", choices=PROFILE_SOURCES, default="fi",
        help="'fi' runs the whole-program campaign; 'model'/'hybrid' build "
        "a per-instruction SDC profile from the static model instead "
        "(hybrid spends --trials faults on the instructions near the "
        "knapsack cut) and print the most SDC-prone instructions",
    )
    p_inj.add_argument(
        "--trials", type=int, default=12,
        help="faults per verified instruction for --profile-source=hybrid",
    )

    p_prot = sub.add_parser(
        "protect", help="protect and evaluate a benchmark",
        parents=[common, caching, supervising, engines, fabrics],
    )
    p_prot.add_argument("app", choices=all_app_names())
    p_prot.add_argument("--method", choices=("sid", "minpsid"), default="minpsid")
    p_prot.add_argument("--level", type=float, default=0.5)
    p_prot.add_argument("--trials", type=int, default=10,
                        help="faults per static instruction")
    p_prot.add_argument("--search-inputs", type=int, default=5)
    p_prot.add_argument("--eval-inputs", type=int, default=0,
                        help="also measure coverage across N random inputs")
    p_prot.add_argument("--faults", type=int, default=200,
                        help="whole-program faults per evaluation campaign")
    p_prot.add_argument("--seed", type=int, default=2022)
    p_prot.add_argument(
        "--workers", type=int, default=None,
        help="process fan-out (default: REPRO_WORKERS env or serial)",
    )
    p_prot.add_argument(
        "--profile-source", choices=PROFILE_SOURCES, default="fi",
        help="how the protection profile's SDC probabilities are obtained: "
        "injected ('fi'), statically predicted ('model'), or predicted "
        "with FI verification near the knapsack cut ('hybrid')",
    )
    p_prot.add_argument(
        "--detectors", default=None, metavar="KINDS",
        help="comma-separated detector zoo kinds (dup,range,store,checksum) "
        "— switches to the multi-detector optimizer (repro.detectors) "
        "instead of --method; validated with --faults FI campaigns",
    )
    p_prot.add_argument(
        "--frontier", action="store_true",
        help="with --detectors: sweep the budget ladder and print the "
        "coverage-vs-overhead Pareto frontier instead of one --level point",
    )

    p_an = sub.add_parser(
        "analyze", parents=[common, caching, supervising, engines, fabrics],
        help="static error-propagation analysis of a benchmark",
    )
    p_an.add_argument("app", choices=all_app_names())
    p_an.add_argument("--top", type=int, default=10,
                      help="print the N most SDC-prone instructions")
    p_an.add_argument(
        "--validate", action="store_true",
        help="also run an FI ground-truth sweep and report rank agreement "
        "plus hybrid trial savings",
    )
    p_an.add_argument("--trials", type=int, default=12,
                      help="ground-truth faults per instruction (--validate)")
    p_an.add_argument("--level", type=float, default=0.5,
                      help="protection level for the selection comparison")
    p_an.add_argument("--verify-margin", type=float, default=0.3,
                      help="hybrid verify-band half-width as a fraction of "
                      "the predicted selection")
    p_an.add_argument("--seed", type=int, default=2022)
    p_an.add_argument(
        "--workers", type=int, default=None,
        help="process fan-out (default: REPRO_WORKERS env or serial)",
    )

    p_fleet = sub.add_parser(
        "fleet", help="fleet-scale SDC resilience simulation (defective "
        "hosts, in-field testing, quarantine policies)",
    )
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_common = argparse.ArgumentParser(add_help=False)
    g = fleet_common.add_argument_group("fleet")
    g.add_argument("--hosts", type=int, default=200,
                   help="fleet size (default: %(default)s)")
    g.add_argument("--defect-rate", type=float, default=0.01,
                   help="defective-host fraction; the count is "
                   "round(hosts * rate) (default: %(default)s)")
    g.add_argument("--defective", type=int, default=None, metavar="N",
                   help="override the defective-host count directly")
    g.add_argument("--rounds", type=int, default=32,
                   help="job rounds to simulate (default: %(default)s)")
    g.add_argument("--seed", type=int, default=2022,
                   help="master seed; summaries are byte-identical given "
                   "equal seeds, regardless of --workers")
    g.add_argument("--apps", metavar="NAME,...", default=None,
                   help="comma-separated job mix (default: all 11 apps)")
    g.add_argument("--workers", type=int, default=None,
                   help="process fan-out for defective-host jobs "
                   "(default: REPRO_WORKERS env or serial)")
    p_fr = fleet_sub.add_parser(
        "run", parents=[common, fleet_common],
        help="simulate one fleet under one resilience policy",
    )
    p_fr.add_argument(
        "--policy", metavar="SPEC", default=None,
        help="policy as [preset][,key=value,...] over test_every, "
        "test_depth, test_coverage, quarantine_at, readmit_after, "
        "protection, min_capacity; presets: default, lax, paranoid, "
        "forgiving (default: the default preset)",
    )
    p_fsw = fleet_sub.add_parser(
        "sweep", parents=[common, fleet_common],
        help="simulate the same fleet under the lax→paranoid policy "
        "ladder and print the escape-rate/throughput-cost tradeoff",
    )
    p_fsw.add_argument(
        "--check-monotone", action="store_true",
        help="exit nonzero unless the escape rate is non-increasing up "
        "the ladder (the fleet-smoke CI gate)",
    )

    p_obs = sub.add_parser("obs", help="inspect recorded telemetry traces")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_rep = obs_sub.add_parser(
        "report", parents=[common],
        help="render the phase/campaign/counters report of a trace",
    )
    p_rep.add_argument("trace_file", help="JSONL trace written by --trace")
    p_rep.add_argument(
        "--bench-dir", default="benchmarks/out", metavar="DIR",
        help="directory of BENCH_*.json perf records to check against their "
        "declared reference bands (default: %(default)s; a missing or "
        "empty directory just omits the section)",
    )
    p_exp = obs_sub.add_parser(
        "export", parents=[common],
        help="convert a trace's span graph to Chrome trace-event JSON "
        "(loadable in Perfetto / chrome://tracing)",
    )
    p_exp.add_argument("trace_file", help="JSONL trace written by --trace")
    p_exp.add_argument(
        "--format", choices=("chrome-trace",), default="chrome-trace",
        help="output format (default: %(default)s)",
    )
    p_exp.add_argument(
        "-o", "--output", metavar="PATH", default=None,
        help="output file (default: <trace_file>.chrome.json)",
    )
    p_flame = obs_sub.add_parser(
        "flame", parents=[common],
        help="print semicolon-folded guest stacks with cycle weights "
        "(flamegraph.pl / speedscope input)",
    )
    p_flame.add_argument("trace_file", help="JSONL trace written by --trace")
    p_hot = obs_sub.add_parser(
        "hotspot", parents=[common],
        help="guest hotspot tables: cycles per IR function, hottest "
        "instructions, opcode mix, batch divergence sites",
    )
    p_hot.add_argument("trace_file", help="JSONL trace written by --trace")
    p_ofleet = obs_sub.add_parser(
        "fleet", parents=[common],
        help="fleet escape-rate/quarantine report from a trace recorded "
        "during 'repro fleet run' or 'repro fleet sweep'",
    )
    p_ofleet.add_argument("trace_file", help="JSONL trace written by --trace")

    from repro.util.benchmeta import BENCH_HISTORY_ENV

    p_trend = obs_sub.add_parser(
        "trend", parents=[common],
        help="sparkline perf trends from an append-only bench history; "
        "exits nonzero when any tracked key regressed",
    )
    p_trend.add_argument(
        "history_dir", nargs="?", default=None,
        help="bench-history directory of *.jsonl series (default: the "
        f"{BENCH_HISTORY_ENV} environment)",
    )

    p_cache = sub.add_parser(
        "cache", help="inspect or maintain a campaign-result cache"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    for name, desc in (
        ("stats", "entry count and byte footprint of the store"),
        ("clear", "remove every cached campaign result"),
        ("verify", "integrity-check every entry; delete the damaged ones"),
    ):
        p = cache_sub.add_parser(name, parents=[common], help=desc)
        p.add_argument(
            "--cache-dir", metavar="PATH", default=None,
            help=f"cache directory (default: the {CACHE_DIR_ENV} environment)",
        )

    p_srv = sub.add_parser(
        "serve", parents=[common, fabrics],
        help="run the campaign fabric service (docs/FABRIC.md)",
    )
    p_srv.add_argument(
        "--listen", metavar="HOST:PORT", default="127.0.0.1:9440",
        help="bind address; port 0 picks a free port and the bound address "
        "is announced on a 'REPRO-SERVE LISTENING host:port' stdout line "
        "(default: %(default)s)",
    )
    p_srv.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="campaign cache for request dedup — repeated identical SUBMITs "
        f"answer from it with zero trials dispatched (default: the "
        f"{CACHE_DIR_ENV} environment, else no dedup)",
    )

    p_sub = sub.add_parser(
        "submit", parents=[common],
        help="submit a campaign to a running 'repro serve' and stream it",
    )
    p_sub.add_argument("app", choices=all_app_names())
    p_sub.add_argument(
        "--connect", metavar="HOST:PORT", default="127.0.0.1:9440",
        help="address of the repro serve endpoint (default: %(default)s)",
    )
    p_sub.add_argument("--faults", type=int, default=500)
    p_sub.add_argument("--seed", type=int, default=2022)
    p_sub.add_argument(
        "--input", metavar="JSON", default=None,
        help="input-record JSON for the app's decoder "
        "(default: the app's reference input)",
    )
    p_sub.add_argument(
        "--workers", type=int, default=None,
        help="server-side process fan-out for this campaign "
        "(default: the server's environment)",
    )
    p_sub.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-frame receive deadline while streaming (default: none)",
    )
    return ap


def _cmd_apps(out) -> int:
    print(render_table1(), file=out)
    return 0


def _cmd_run(args, out) -> int:
    app = get_app(args.app)
    r = app.run_reference()
    print(f"{app.name}: {r.steps} dynamic instructions", file=out)
    print(f"output ({len(r.output)} values): {r.output}", file=out)
    return 0


def _cmd_ir(args, out) -> int:
    print(print_module(get_app(args.app).module), file=out)
    return 0


def _cmd_inject(args, out) -> int:
    app = get_app(args.app)
    a, b = app.encode(app.reference_input)
    if args.profile_source != "fi":
        return _inject_profile(args, app, a, b, out)
    log.info(
        "campaign: app=%s faults=%d seed=%d workers=%s checkpoint=%s",
        app.name, args.faults, args.seed, args.workers,
        args.checkpoint_interval,
    )
    camp = run_campaign(
        app.program, args.faults, args.seed, args=a, bindings=b,
        rel_tol=app.rel_tol, abs_tol=app.abs_tol, workers=args.workers,
        checkpoint_interval=args.checkpoint_interval,
        max_retries=args.max_retries, task_timeout=args.task_timeout,
    )
    lo, hi = camp.sdc_confidence()
    print(f"{app.name}: {camp.counts!r}", file=out)
    print(
        f"SDC probability {camp.sdc_probability:.2%} "
        f"(95% CI [{lo:.2%}, {hi:.2%}])",
        file=out,
    )
    return 0


def _inject_profile(args, app, a, b, out) -> int:
    """``inject --profile-source=model|hybrid``: model-built SDC profile."""
    from repro.sid.profiles import build_profile_from_source

    log.info(
        "model profile: app=%s source=%s trials=%d seed=%d",
        app.name, args.profile_source, args.trials, args.seed,
    )
    profile = build_profile_from_source(
        app.program, a, b,
        source=args.profile_source,
        trials_per_instruction=args.trials,
        seed=args.seed,
        rel_tol=app.rel_tol,
        abs_tol=app.abs_tol,
        workers=args.workers,
    )
    verified = sum(1 for v in profile.provenance.values() if v == "fi")
    print(
        f"{app.name}: per-instruction SDC profile from "
        f"'{profile.source}' source", file=out,
    )
    if args.profile_source == "hybrid":
        print(
            f"FI-verified instructions: {verified} "
            f"({verified * args.trials} trials)", file=out,
        )
    _print_top_instructions(app.module, profile, 10, out)
    return 0


def _print_top_instructions(module, profile, top: int, out) -> None:
    """Most SDC-prone executed instructions of a cost/benefit profile."""
    ranked = sorted(
        (
            (iid, p) for iid, p in profile.sdc_prob.items()
            if profile.counts.get(iid, 0) > 0
        ),
        key=lambda kv: (-kv[1], kv[0]),
    )[:top]
    print(f"top {len(ranked)} SDC-prone instructions:", file=out)
    for iid, p in ranked:
        instr = module.instruction(iid)
        src = profile.provenance.get(iid, profile.source)
        print(
            f"  iid {iid:4d}  p={p:.3f}  [{src:5s}] "
            f"{instr.opcode} in @{instr.parent.parent.name}",
            file=out,
        )


def _cmd_analyze(args, out) -> int:
    from repro.analysis.model import (
        predict_sdc_probabilities, predicted_whole_program_sdc,
    )
    from repro.sid.profiles import build_cost_benefit_profile
    from repro.vm.profiler import profile_run

    app = get_app(args.app)
    a, b = app.encode(app.reference_input)
    log.info("analyze: app=%s validate=%s", app.name, args.validate)
    dyn = profile_run(app.program, args=a, bindings=b)
    predicted = predict_sdc_probabilities(app.module, dyn, rel_tol=app.rel_tol)
    print(
        f"{app.name}: analyzed {len(predicted.sdc_prob)} injectable "
        f"instructions across {len(app.module.functions)} functions",
        file=out,
    )
    print(
        f"predicted whole-program SDC probability: "
        f"{predicted_whole_program_sdc(predicted):.2%}",
        file=out,
    )
    profile = build_cost_benefit_profile(
        app.module, dyn, predicted, source="model"
    )
    _print_top_instructions(app.module, profile, args.top, out)
    if not args.validate:
        return 0

    from repro.exp.config import TINY
    from repro.exp.modelval import render_model_validation, run_model_validation

    scale = TINY.with_(
        per_instr_trials=args.trials,
        seed=args.seed,
        workers=args.workers,
        protection_levels=(args.level,),
        cache_dir=None,  # the ambient cache scope (per --cache-dir) applies
    )
    rows = run_model_validation(
        scale, apps=(app.name,), verify_margin=args.verify_margin
    )
    print("", file=out)
    print(render_model_validation(rows), file=out)
    return 0


def _cmd_obs(args, out) -> int:
    from repro.obs.report import load_trace, render_report

    if args.obs_command == "report":
        print(
            render_report(args.trace_file, bench_dir=args.bench_dir), file=out
        )
        return 0
    if args.obs_command == "trend":
        from repro.obs.trend import render_trend
        from repro.util.benchmeta import BENCH_HISTORY_ENV, history_dir

        directory = args.history_dir or history_dir()
        if directory is None:
            print(
                "no bench history: pass a directory or set "
                f"{BENCH_HISTORY_ENV}",
                file=sys.stderr,
            )
            return 2
        text, regressions = render_trend(directory)
        print(text, file=out)
        return 1 if regressions else 0
    # The trace-consuming subcommands tolerate a half-written final line
    # (a live or killed producer), surfacing the drop on stderr.
    warnings: list[str] = []
    records = load_trace(
        args.trace_file, tolerate_torn_tail=True, warnings=warnings
    )
    for w in warnings:
        print(f"WARNING: {w}", file=sys.stderr)
    if args.obs_command == "export":
        from repro.obs.export import write_chrome_trace

        output = args.output or f"{args.trace_file}.chrome.json"
        n = write_chrome_trace(records, output)
        print(f"wrote {n} {args.format} events to {output}", file=out)
        return 0
    if args.obs_command == "flame":
        from repro.obs.hotspot import folded_stacks

        for line in folded_stacks(records):
            print(line, file=out)
        return 0
    if args.obs_command == "fleet":
        from repro.obs.fleetview import render_fleet

        print(render_fleet(records), file=out)
        return 0
    from repro.obs.hotspot import render_hotspots

    print(render_hotspots(records), file=out)
    return 0


def _cmd_fleet(args, out) -> int:
    from repro.fleet import parse_policy, render_fleet_summary, run_fleet
    from repro.fleet.sweep import render_sweep, run_sweep, sweep_is_monotone

    apps = args.apps.split(",") if args.apps else None
    if args.fleet_command == "run":
        result = run_fleet(
            args.hosts, args.defect_rate, parse_policy(args.policy),
            args.seed, rounds=args.rounds, apps=apps,
            n_defective=args.defective, workers=args.workers,
        )
        print(render_fleet_summary(result), file=out)
        return 0
    results = run_sweep(
        args.hosts, args.defect_rate, args.seed, rounds=args.rounds,
        apps=apps, n_defective=args.defective, workers=args.workers,
    )
    print(render_sweep(results), file=out)
    if args.check_monotone and not sweep_is_monotone(results):
        return 1
    return 0


def _cmd_cache(args, out) -> int:
    import os

    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV, "").strip()
    if not cache_dir:
        print(
            f"no cache directory: pass --cache-dir or set {CACHE_DIR_ENV}",
            file=sys.stderr,
        )
        return 2
    store = store_for(cache_dir)
    if args.cache_command == "stats":
        print(store.stats().render(), file=out)
    elif args.cache_command == "clear":
        removed = store.clear()
        print(f"cleared {removed} entries from {store.root}", file=out)
    else:  # verify
        bad = store.verify(delete=True)
        total = store.stats().entries
        if bad:
            print(
                f"{store.root}: removed {len(bad)} damaged entries, "
                f"{total} intact",
                file=out,
            )
        else:
            print(f"{store.root}: all {total} entries intact", file=out)
    return 0


def _cmd_protect_detectors(args, out) -> int:
    from repro.detectors import (
        DEFAULT_BUDGETS,
        FrontierConfig,
        build_frontier,
        frontier_detector_kinds,
        frontier_is_monotone,
    )

    app = get_app(args.app)
    a, b = app.encode(app.reference_input)
    kinds = tuple(k.strip() for k in args.detectors.split(",") if k.strip())
    budgets = DEFAULT_BUDGETS if args.frontier else (args.level,)
    log.info(
        "protect: app=%s detectors=%s budgets=%s seed=%d",
        app.name, ",".join(kinds), budgets, args.seed,
    )
    res = build_frontier(
        app.module, a, b,
        FrontierConfig(
            detectors=kinds,
            budgets=budgets,
            profile_source=args.profile_source,
            per_instruction_trials=args.trials,
            seed=args.seed,
            rel_tol=app.rel_tol,
            abs_tol=app.abs_tol,
            workers=args.workers,
            validate_faults=args.faults,
        ),
    )
    print(f"technique: detector zoo [{','.join(kinds)}]", file=out)
    print(
        f"candidates: {len(res.candidates)} across "
        f"{len(set(c.detector for c in res.candidates))} detector kinds",
        file=out,
    )
    for p, v in zip(res.points, res.validations):
        c = p.config
        mix = " ".join(f"{k}:{n}" for k, n in sorted(c.by_kind.items()))
        mc = (
            f"{v.measured_coverage:.2%}"
            if v.measured_coverage is not None else "n/a"
        )
        print(
            f"  budget {p.budget:>5.0%}: overhead {c.overhead:.1%} "
            f"(measured {v.measured_overhead:.1%}), coverage "
            f"predicted {c.coverage:.2%} / measured {mc}, "
            f"detected {v.detected_rate:.2%} [{mix or 'none'}]",
            file=out,
        )
    if args.frontier:
        print(
            "frontier: "
            + ("monotone" if frontier_is_monotone(res.points)
               else "NOT monotone")
            + f", kinds {','.join(frontier_detector_kinds(res.points))}",
            file=out,
        )
    return 0


def _cmd_protect(args, out) -> int:
    if getattr(args, "detectors", None):
        return _cmd_protect_detectors(args, out)
    app = get_app(args.app)
    a, b = app.encode(app.reference_input)
    log.info(
        "protect: app=%s method=%s level=%.2f seed=%d",
        app.name, args.method, args.level, args.seed,
    )
    if args.method == "sid":
        res = classic_sid(
            app.module, a, b,
            SIDConfig(
                protection_level=args.level,
                per_instruction_trials=args.trials,
                seed=args.seed,
                rel_tol=app.rel_tol,
                abs_tol=app.abs_tol,
                workers=args.workers,
                profile_source=args.profile_source,
            ),
        )
        protected, selection = res.protected, res.selection
        print(f"technique: classic SID @{args.level:.0%}", file=out)
    else:
        res = minpsid(
            app,
            MINPSIDConfig(
                protection_level=args.level,
                per_instruction_trials=args.trials,
                seed=args.seed,
                profile_source=args.profile_source,
                search=InputSearchConfig(
                    max_inputs=args.search_inputs,
                    per_instruction_trials=max(2, args.trials // 2),
                    ga=GAConfig(),
                    workers=args.workers,
                ),
                workers=args.workers,
            ),
        )
        protected, selection = res.protected, res.selection
        print(f"technique: MINPSID @{args.level:.0%}", file=out)
        print(
            f"searched inputs: {len(res.search.inputs) - 1}, "
            f"incubative found: {len(res.incubative)}",
            file=out,
        )
    print(
        f"selected {len(selection.selected)} instructions "
        f"({selection.used_budget:.1%} of cycles), "
        f"{protected.checks} checks inserted",
        file=out,
    )
    print(f"expected SDC coverage: {selection.expected_coverage:.2%}", file=out)

    if args.eval_inputs > 0:
        prog_prot = Program(protected.module)
        inputs = generate_eval_inputs(app, args.eval_inputs, args.seed + 1)
        covered = []
        for k, inp in enumerate(inputs):
            ia, ib = app.encode(inp)
            pu = run_campaign(
                app.program, args.faults, args.seed + 10 + k, args=ia,
                bindings=ib, rel_tol=app.rel_tol, abs_tol=app.abs_tol,
                workers=args.workers,
                max_retries=args.max_retries, task_timeout=args.task_timeout,
            ).sdc_probability
            pp = run_campaign(
                prog_prot, args.faults, args.seed + 1000 + k, args=ia,
                bindings=ib, rel_tol=app.rel_tol, abs_tol=app.abs_tol,
                workers=args.workers,
                max_retries=args.max_retries, task_timeout=args.task_timeout,
            ).sdc_probability
            cov = measured_coverage(pu, pp)
            if cov is not None:
                covered.append(cov)
                print(f"  input {k}: measured coverage {cov:.2%}", file=out)
        if covered:
            print(
                f"measured coverage: min {min(covered):.2%}, "
                f"mean {sum(covered) / len(covered):.2%}",
                file=out,
            )
    return 0


def _cmd_serve(args, out) -> int:
    from repro.fabric.serve import run_serve
    from repro.fabric.transport import parse_addr

    host, port = parse_addr(args.listen)
    log.info(
        "serve: listen=%s:%d transport=%s cache=%s",
        host, port, args.transport or "(env)", args.cache_dir or "(env)",
    )
    run_serve(
        host, port, cache=args.cache_dir,
        transport=args.transport, adapters=args.adapters,
    )
    return 0


def _cmd_submit(args, out) -> int:
    import json

    from repro.fabric.serve import submit
    from repro.fabric.transport import parse_addr

    host, port = parse_addr(args.connect)
    request = {"app": args.app, "n_faults": args.faults, "seed": args.seed}
    if args.input is not None:
        request["input"] = json.loads(args.input)
    if args.workers is not None:
        request["workers"] = args.workers
    app = get_app(args.app)
    request.setdefault("rel_tol", app.rel_tol)
    request.setdefault("abs_tol", app.abs_tol)
    seen = {"events": 0}

    def on_progress(record) -> None:
        seen["events"] += 1
        if isinstance(record, dict) and record.get("event") == "heartbeat":
            print(
                f"  progress: {record.get('done', '?')}/"
                f"{record.get('total', '?')} trials",
                file=sys.stderr,
            )

    outcome = submit(
        host, port, request, on_progress=on_progress, timeout=args.timeout
    )
    if not outcome.get("ok"):
        print(f"campaign failed: {outcome.get('error')}", file=sys.stderr)
        return 3
    counts = outcome.get("counts", {})
    summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print(f"{args.app}: {summary or 'no outcomes'}", file=out)
    print(
        f"SDC probability {outcome.get('sdc_probability', 0.0):.2%} "
        f"over {outcome.get('trials', 0)} trials",
        file=out,
    )
    cached = outcome.get("cached")
    print(
        f"trials dispatched: {outcome.get('dispatched', '?')} "
        f"(cache: {'hit' if cached else 'miss'}), "
        f"{outcome.get('seconds', 0.0):.2f}s server-side, "
        f"{seen['events']} progress events",
        file=out,
    )
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    configure_logging(
        verbose=getattr(args, "verbose", 0),
        log_level=getattr(args, "log_level", None),
    )
    handlers = {
        "apps": lambda: _cmd_apps(out),
        "run": lambda: _cmd_run(args, out),
        "ir": lambda: _cmd_ir(args, out),
        "inject": lambda: _cmd_inject(args, out),
        "fi": lambda: _cmd_inject(args, out),
        "protect": lambda: _cmd_protect(args, out),
        "analyze": lambda: _cmd_analyze(args, out),
        "fleet": lambda: _cmd_fleet(args, out),
        "obs": lambda: _cmd_obs(args, out),
        "cache": lambda: _cmd_cache(args, out),
        "serve": lambda: _cmd_serve(args, out),
        "submit": lambda: _cmd_submit(args, out),
    }
    handler = handlers[args.command]
    # serve installs its own cache/fabric scopes around the event loop and
    # submit runs no campaigns locally, so neither goes through _with_cache.
    if args.command not in ("cache", "serve", "submit"):
        inner = handler
        handler = lambda: _with_cache(args, inner)  # noqa: E731
    trace = getattr(args, "trace", None)
    progress = getattr(args, "progress", False)
    want_dashboard = getattr(args, "dashboard", False)
    try:
        if trace or progress or want_dashboard:
            dashboard = None
            if want_dashboard:
                from repro.obs.dashboard import Dashboard

                dashboard = Dashboard()
            with session(trace=trace, progress=progress, dashboard=dashboard):
                rc = handler()
            if trace:
                log.info("telemetry trace written to %s", trace)
            return rc
        return handler()
    except HarnessError as e:
        # Infrastructure faults that survived every retry: summarize,
        # never dump a raw traceback over the machine-readable output.
        print(
            f"harness failure ({type(e).__name__}): {e}", file=sys.stderr
        )
        return 3


def _with_cache(args, handler) -> int:
    """Run a command handler under its requested cache and engine scopes.

    The engine scope makes ``--engine``/``--batch-size`` ambient, so every
    campaign a command triggers — including nested ones inside hybrid
    verification or protection evaluation — picks them up without each
    layer growing executor parameters. The fabric scope does the same for
    ``--transport``/``--adapters`` (docs/FABRIC.md).
    """
    from repro.fabric.harness import fabric_scope
    from repro.vm.batch import engine_scope

    spec = _cache_spec(args)
    with cache_scope(spec) as store, engine_scope(
        getattr(args, "engine", None), getattr(args, "batch_size", None)
    ), fabric_scope(
        getattr(args, "transport", None), getattr(args, "adapters", None)
    ):
        if store is not None:
            log.info("campaign cache: %s", store.root)
        return handler()
