"""``repro.obs``: structured telemetry for campaigns, pipelines and the VM.

The subsystem has four layers:

* **Records & schema** (:mod:`repro.obs.events`, :mod:`repro.obs.schema`) —
  every trace line is one JSON object with a fixed key set (``ts``, ``kind``,
  ``name``, ``run``, ``campaign``, ``trial``, ``fields``) validated by
  ``scripts/trace_lint.py``.
* **Aggregation** (:mod:`repro.obs.metrics`, :mod:`repro.obs.timers`) —
  deterministic counters, gauges and summary histograms, plus exclusive-time
  phase timers (the Fig. 8 breakdown).
* **Sinks & surfaces** (:mod:`repro.obs.sink`, :mod:`repro.obs.progress`,
  :mod:`repro.obs.log`, :mod:`repro.obs.report`) — JSONL traces, heartbeat
  progress lines with ETA on stderr, a verbosity-controlled logger, and the
  ``repro obs report`` trace summarizer.
* **Context** (:mod:`repro.obs.core`) — a process-local active
  :class:`~repro.obs.core.Telemetry` installed by
  :func:`~repro.obs.core.session`. Instrumentation call sites are guarded by
  ``current() is None`` so a run without a session pays a single attribute
  check; pool workers install a metrics-only telemetry and ship their deltas
  back with each result batch (the reducer pattern).
"""

from repro.obs.core import (
    Telemetry,
    current,
    install_worker,
    session,
)
from repro.obs.events import SCHEMA_VERSION, make_record
from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import JsonlTraceSink, MemorySink, NullSink, TraceSink
from repro.obs.timers import PhaseTimer, Stopwatch

__all__ = [
    "Telemetry",
    "current",
    "session",
    "install_worker",
    "SCHEMA_VERSION",
    "make_record",
    "configure_logging",
    "get_logger",
    "MetricsRegistry",
    "TraceSink",
    "NullSink",
    "MemorySink",
    "JsonlTraceSink",
    "PhaseTimer",
    "Stopwatch",
]
