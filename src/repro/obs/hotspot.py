"""Guest hotspot attribution: where do a workload's VM cycles go?

Consumes a parsed telemetry trace and renders the guest-side performance
picture from two sources:

* ``vm.profile`` events (one per profiled golden run) carry per-IR-function
  exclusive cycles, call-path entry counts, the dynamic instruction mix, and
  the heaviest individual instructions — emitted by
  :func:`repro.vm.profiler.profile_run`;
* the summary counters carry the batch engine's per-site attribution
  (``batch.detach_site.{fn:block}`` / ``batch.reconverge_site.{fn:block}``)
  and the lockstep/scalar step split behind its occupancy.

Two render targets: :func:`render_hotspots` (tables for ``repro obs
hotspot``) and :func:`folded_stacks` (``repro obs flame``), the
semicolon-folded stack format every flamegraph tool ingests
(``flamegraph.pl``, speedscope, inferno)::

    pathfinder;main;row_solve 10240

A function's *exclusive* cycles are distributed across the call paths that
reach it proportional to each path's entry count — an approximation (entry
counts, not per-path cycle measurements), but an exact one whenever a
function's per-call cost is path-independent, which holds for every app in
the suite.
"""

from __future__ import annotations

from repro.util.tables import format_table

__all__ = [
    "profile_fields",
    "folded_stacks",
    "render_hotspots",
]


def profile_fields(records: list[dict]) -> list[dict]:
    """The ``vm.profile`` field payloads, keeping the last per module."""
    by_module: dict[str, dict] = {}
    for rec in records:
        if rec.get("kind") == "event" and rec.get("name") == "vm.profile":
            f = rec.get("fields", {})
            by_module[f.get("module", "?")] = f
    return list(by_module.values())


def _summary_counters(records: list[dict]) -> dict:
    summary = next(
        (r for r in reversed(records) if r.get("kind") == "summary"), None
    )
    if summary is None:
        return {}
    return summary.get("fields", {}).get("counters", {}) or {}


def _function_table(profiles: list[dict]) -> str | None:
    rows = []
    for prof in profiles:
        module = prof.get("module", "?")
        fns = prof.get("functions") or {}
        total = prof.get("total_cycles") or sum(fns.values()) or 0
        for name, cycles in sorted(fns.items(), key=lambda kv: -kv[1]):
            if not cycles:
                continue
            rows.append([
                module, name, f"{cycles:,}",
                f"{cycles / total:.1%}" if total else "-",
            ])
    if not rows:
        return None
    return format_table(
        ["Module", "Function", "Cycles", "Share"], rows,
        title="Guest hotspots: exclusive cycles per IR function",
    )


def _instruction_table(profiles: list[dict]) -> str | None:
    rows = []
    for prof in profiles:
        module = prof.get("module", "?")
        for entry in prof.get("top_instructions") or []:
            rows.append([
                module,
                str(entry.get("iid", "?")),
                str(entry.get("opcode", "?")),
                f"{entry.get('count', 0):,}",
                f"{entry.get('cycles', 0):,}",
            ])
    if not rows:
        return None
    return format_table(
        ["Module", "iid", "Opcode", "Executions", "Cycles"], rows,
        title="Hottest instructions (dynamic cycles)",
    )


def _mix_table(profiles: list[dict]) -> str | None:
    rows = []
    for prof in profiles:
        module = prof.get("module", "?")
        mix = prof.get("instruction_mix") or {}
        total = sum(mix.values())
        for opcode, n in sorted(mix.items(), key=lambda kv: -kv[1])[:10]:
            rows.append([
                module, opcode, f"{n:,}",
                f"{n / total:.1%}" if total else "-",
            ])
    if not rows:
        return None
    return format_table(
        ["Module", "Opcode", "Executions", "Share"], rows,
        title="Dynamic instruction mix (top opcodes)",
    )


def _batch_site_table(records: list[dict]) -> str | None:
    counters = _summary_counters(records)
    sites: dict[str, list[float]] = {}
    for key, n in counters.items():
        if key.startswith("batch.detach_site."):
            sites.setdefault(key[len("batch.detach_site."):], [0, 0])[0] += n
        elif key.startswith("batch.reconverge_site."):
            sites.setdefault(key[len("batch.reconverge_site."):], [0, 0])[1] += n
    if not sites:
        return None
    rows = [
        [site, f"{d:g}", f"{r:g}"]
        for site, (d, r) in sorted(
            sites.items(), key=lambda kv: (-(kv[1][0] + kv[1][1]), kv[0])
        )
    ]
    lock = counters.get("batch.lockstep_steps", 0)
    scal = counters.get("batch.scalar_steps", 0)
    title = "Batch engine: divergence sites (fn:block)"
    if lock + scal:
        title += f" — occupancy {lock / (lock + scal):.1%}"
    return format_table(["Site", "Detaches", "Reconverges"], rows, title=title)


def folded_stacks(records: list[dict]) -> list[str]:
    """Semicolon-folded stacks with cycle weights, one line per call path.

    Each function's exclusive cycles are split across its entry paths in
    proportion to the path entry counts. Profiles without call-path data
    (schema-v1 traces) degrade to one single-frame stack per function.
    """
    lines: list[str] = []
    for prof in profile_fields(records):
        module = prof.get("module", "?")
        fns = prof.get("functions") or {}
        raw_paths = prof.get("call_paths") or {}
        paths = {
            tuple(k.split(";")): n for k, n in raw_paths.items() if k
        }
        entries: dict[str, int] = {}
        for path, n in paths.items():
            entries[path[-1]] = entries.get(path[-1], 0) + n
        emitted: set[str] = set()
        for path, n in sorted(paths.items()):
            leaf = path[-1]
            cycles = fns.get(leaf, 0)
            total = entries.get(leaf, 0)
            weight = round(cycles * n / total) if total else 0
            if weight:
                lines.append(f"{module};{';'.join(path)} {weight}")
                emitted.add(leaf)
        for name, cycles in sorted(fns.items()):
            if cycles and name not in emitted and name not in entries:
                lines.append(f"{module};{name} {cycles}")
    return lines


def render_hotspots(records: list[dict]) -> str:
    """The full hotspot report for one parsed trace."""
    profiles = profile_fields(records)
    sections = [
        s for s in (
            _function_table(profiles),
            _instruction_table(profiles),
            _mix_table(profiles),
            _batch_site_table(records),
        ) if s
    ]
    if not sections:
        return (
            "(no vm.profile events or batch.* site counters in this trace — "
            "run a campaign or `repro profile` with --trace)"
        )
    return "\n\n".join(sections)
