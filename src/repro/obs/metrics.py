"""Counters, gauges and summary histograms with multiprocessing reduction.

The registry splits metrics by determinism so tests can assert
reproducibility without fighting wall clocks:

* **counters** — additive and deterministic in (program, input, seed): trial
  counts, outcome tallies, VM step totals. Identical whatever the worker
  count.
* **gauges** — last-write-wins point samples.
* **histograms** — count/sum/min/max summaries of nondeterministic
  observations (batch wall times, throughput).

Pool workers accumulate into a process-local registry and
:meth:`MetricsRegistry.drain` it into a plain dict shipped back with each
result batch; the parent :meth:`MetricsRegistry.merge`\\ s the delta. This is
the reducer half of the "queue/reducer" design: deltas ride the existing
``parallel_map`` result channel, so no extra IPC machinery (or queue
lifetime management) is needed and reduction order never affects totals.
"""

from __future__ import annotations

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Mergeable in-process metrics store."""

    __slots__ = ("counters", "gauges", "_hist")

    def __init__(self) -> None:
        self.counters: dict[str, int | float] = {}
        self.gauges: dict[str, float] = {}
        # name -> [count, sum, min, max]
        self._hist: dict[str, list] = {}

    # ------------------------------------------------------------------
    def count(self, name: str, n: int | float = 1) -> None:
        """Add ``n`` to counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest sample."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name``."""
        h = self._hist.get(name)
        if h is None:
            self._hist[name] = [1, value, value, value]
        else:
            h[0] += 1
            h[1] += value
            if value < h[2]:
                h[2] = value
            if value > h[3]:
                h[3] = value

    # ------------------------------------------------------------------
    def histograms(self) -> dict[str, dict]:
        """Histogram summaries as plain dicts (mean included)."""
        out = {}
        for name, (n, s, lo, hi) in self._hist.items():
            out[name] = {
                "count": n, "sum": s, "min": lo, "max": hi,
                "mean": s / n if n else 0.0,
            }
        return out

    def snapshot(self) -> dict:
        """Full state as a plain (picklable, JSON-able) dict."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: list(v) for k, v in self._hist.items()},
        }

    def drain(self) -> dict:
        """Snapshot then reset — the worker side of the reducer."""
        snap = self.snapshot()
        self.counters.clear()
        self.gauges.clear()
        self._hist.clear()
        return snap

    def merge(self, delta: dict) -> None:
        """Fold a drained snapshot from another registry into this one."""
        for name, n in delta.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + n
        self.gauges.update(delta.get("gauges", {}))
        for name, (n, s, lo, hi) in delta.get("histograms", {}).items():
            h = self._hist.get(name)
            if h is None:
                self._hist[name] = [n, s, lo, hi]
            else:
                h[0] += n
                h[1] += s
                if lo < h[2]:
                    h[2] = lo
                if hi > h[3]:
                    h[3] = hi
