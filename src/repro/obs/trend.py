"""Perf-trend observatory: ``repro obs trend`` over the bench history.

The ``BENCH_*.json`` snapshots answer "how fast is it now"; the append-only
history under :data:`repro.util.benchmeta.BENCH_HISTORY_ENV` answers "which
way is it going". Each ``{history}/{name}.jsonl`` line is one bench run
(git sha, timestamp, full record); this module renders per-key sparkline
trend tables and flags regressions two ways:

* **band** — the latest measurement sits outside the reference band the
  bench itself declared (the ReFrame-style ``[value, lower, upper]`` spec);
* **trend** — the latest measurement fell away from the *rolling baseline*
  (median of the preceding runs) by more than the declared tolerance, even
  if it still sits inside the static band. This is the slow-leak detector:
  a 5% loss per PR stays in-band for months while the trend check fires on
  the first clearly-out-of-family point.

:func:`render_trend` returns the table plus the regression count so the CLI
can exit nonzero and CI can gate on it.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.util.benchmeta import reference_status
from repro.util.tables import format_table

__all__ = ["load_history", "key_series", "trend_rows", "render_trend"]

#: Sparkline glyphs, lowest to highest.
SPARK = "▁▂▃▄▅▆▇█"

#: Rolling-baseline window: the median of up to this many preceding runs.
BASELINE_WINDOW = 5

#: Trend tolerance when a key declares no band side in the bad direction.
DEFAULT_TOLERANCE = 0.25


def load_history(directory: str | Path) -> dict[str, list[dict]]:
    """Read every ``*.jsonl`` series under ``directory``.

    Returns ``{bench name: [entry, ...]}`` with entries ordered by
    timestamp. Unreadable lines are skipped — a history directory fed by
    many CI runs must tolerate a torn append.
    """
    series: dict[str, list[dict]] = {}
    directory = Path(directory)
    if not directory.is_dir():
        return series
    for path in sorted(directory.glob("*.jsonl")):
        entries = []
        for line in path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and isinstance(entry.get("record"), dict):
                entries.append(entry)
        if entries:
            entries.sort(key=lambda e: e.get("ts", 0.0))
            series[path.stem] = entries
    return series


def _lookup(data, path: str):
    node = data
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _tracked_keys(entries: list[dict]) -> list[str]:
    """The keys a series tracks: the latest record's declared references,
    falling back to its numeric top-level data leaves when it has none."""
    record = entries[-1]["record"]
    refs = record.get("references")
    if isinstance(refs, dict) and refs:
        return list(refs)
    data = record.get("data")
    if not isinstance(data, dict):
        return []
    return [
        k for k, v in data.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    ][:8]


def key_series(entries: list[dict], key: str) -> list[float]:
    """The measured values of one dotted key across a series, oldest first
    (runs where the key is absent or non-numeric are skipped)."""
    values = []
    for entry in entries:
        v = _lookup(entry["record"].get("data", {}), key)
        if isinstance(v, (int, float)) and not isinstance(v, bool):
            values.append(float(v))
    return values


def sparkline(values: list[float]) -> str:
    """Min-max normalized sparkline of a numeric series."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return SPARK[0] * len(values)
    steps = len(SPARK) - 1
    return "".join(
        SPARK[round((v - lo) / (hi - lo) * steps)] for v in values
    )


def _median(values: list[float]) -> float:
    s = sorted(values)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else (s[mid - 1] + s[mid]) / 2.0


def _trend_status(values: list[float], spec) -> tuple[str, str]:
    """(status, detail) of the rolling-baseline check for one key series.

    The *bad* direction comes from the declared band: a lower tolerance
    means higher-is-better (throughput), an upper one lower-is-better
    (latency); with both or neither, both directions are checked with the
    declared (or default) fractions.
    """
    if len(values) < 2:
        return "new", f"{len(values)} run(s)"
    baseline = _median(values[-1 - BASELINE_WINDOW:-1])
    latest = values[-1]
    lower = upper = None
    if isinstance(spec, (list, tuple)) and len(spec) == 3:
        _, lower, upper = spec
    check_low = upper is None or lower is not None
    check_high = lower is None or upper is not None
    lo_frac = abs(lower) if lower is not None else DEFAULT_TOLERANCE
    hi_frac = abs(upper) if upper is not None else DEFAULT_TOLERANCE
    detail = f"baseline {baseline:g}"
    if baseline == 0:
        return "ok", detail
    delta = (latest - baseline) / abs(baseline)
    if check_low and delta < -lo_frac:
        return "REGRESSION", f"{delta:+.1%} vs {detail}"
    if check_high and delta > hi_frac:
        return "REGRESSION", f"{delta:+.1%} vs {detail}"
    return "ok", f"{delta:+.1%} vs {detail}"


def trend_rows(series: dict[str, list[dict]]) -> list[dict]:
    """One analyzed row per (bench, tracked key) across the whole history."""
    rows: list[dict] = []
    for name, entries in sorted(series.items()):
        latest = entries[-1]
        band = {
            key: ok for key, _, _, _, _, ok in reference_status(latest["record"])
        }
        refs = latest["record"].get("references")
        refs = refs if isinstance(refs, dict) else {}
        for key in _tracked_keys(entries):
            values = key_series(entries, key)
            if not values:
                continue
            band_ok = band.get(key, True)
            trend, detail = _trend_status(values, refs.get(key))
            status = "ok"
            if not band_ok:
                status = "REGRESSION(band)"
            elif trend == "REGRESSION":
                status = "REGRESSION(trend)"
            elif trend == "new":
                status = "new"
            rows.append({
                "bench": name,
                "key": key,
                "values": values,
                "latest": values[-1],
                "sha": latest.get("sha", "?"),
                "runs": len(values),
                "status": status,
                "detail": detail,
            })
    return rows


def render_trend(directory: str | Path) -> tuple[str, int]:
    """Render the trend table for one history directory.

    Returns ``(text, regressions)``; the CLI exits nonzero when
    ``regressions > 0`` so CI can gate on the observatory.
    """
    series = load_history(directory)
    if not series:
        return (
            f"(no bench history under {directory} — run a bench with "
            f"REPRO_BENCH_HISTORY={directory})",
            0,
        )
    rows = trend_rows(series)
    table_rows = [
        [
            r["bench"], r["key"], sparkline(r["values"]), f"{r['latest']:g}",
            str(r["runs"]), r["sha"], r["status"], r["detail"],
        ]
        for r in rows
    ]
    regressions = sum(1 for r in rows if r["status"].startswith("REGRESSION"))
    text = format_table(
        ["Bench", "Key", "Trend", "Latest", "Runs", "Sha", "Status", "Detail"],
        table_rows,
        title=f"Perf trends ({directory}; baseline = median of last "
              f"{BASELINE_WINDOW} runs)",
    )
    if regressions:
        text += f"\n\n{regressions} regression(s) detected"
    return text, regressions
