"""Chrome trace-event export: ``repro obs export --format=chrome-trace``.

Converts a JSONL telemetry trace into the Chrome trace-event JSON format
(the ``{"traceEvents": [...]}`` object form) so a campaign's span tree can
be opened in Perfetto / ``chrome://tracing`` as a zoomable timeline:

* ``span`` records become complete (``"ph": "X"``) slices. All slices share
  one process; the thread lane is recovered from the span id — parent spans
  (``s{n}``) go to thread 0, worker spans (``w{pid}-{n}``) to a lane per
  worker pid — so chunk subtrees line up under the worker that ran them.
* ``phase`` records (exclusive-time charges) become slices on a dedicated
  "phase charges" lane, back-dated by their duration.
* ``event`` records become instant (``"ph": "i"``) markers.

Timestamps are microseconds relative to the earliest point in the trace, as
the format expects. The exporter is tolerant of truncated traces: it works
on whatever records :func:`repro.obs.report.load_trace` recovered.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["to_chrome_trace", "write_chrome_trace", "lint_chrome_trace"]

#: Synthetic thread id for the phase-charge lane (real pids never reach it).
PHASE_TID = 1_000_000


def _span_tid(span_id: str) -> int:
    """Thread lane of a span: 0 for the parent, the worker pid otherwise."""
    if span_id.startswith("w") and "-" in span_id:
        head = span_id[1:].split("-", 1)[0]
        if head.isdigit():
            return int(head)
    return 0


def _base_ts(records: list[dict]) -> float:
    """Earliest wall-clock point: min over record stamps and span starts."""
    points = []
    for rec in records:
        ts = rec.get("ts")
        if isinstance(ts, (int, float)):
            points.append(ts)
        if rec.get("kind") == "span":
            start = rec.get("fields", {}).get("start")
            if isinstance(start, (int, float)):
                points.append(start)
        elif rec.get("kind") == "phase":
            sec = rec.get("fields", {}).get("seconds")
            if isinstance(ts, (int, float)) and isinstance(sec, (int, float)):
                points.append(ts - sec)
    return min(points) if points else 0.0


def to_chrome_trace(records: list[dict]) -> dict:
    """Build the Chrome trace-event object for one parsed trace."""
    base = _base_ts(records)
    events: list[dict] = []
    tids: set[int] = set()
    for rec in records:
        kind = rec.get("kind")
        f = rec.get("fields", {})
        ts = rec.get("ts", base)
        if kind == "span":
            start = f.get("start", ts)
            sid = f.get("span_id", "")
            tid = _span_tid(sid if isinstance(sid, str) else "")
            tids.add(tid)
            args = {
                k: v for k, v in f.items()
                if k not in ("span_id", "parent_id", "start", "seconds")
            }
            args["span_id"] = f.get("span_id")
            args["parent_id"] = f.get("parent_id")
            events.append({
                "name": rec.get("name", "?"),
                "cat": "span",
                "ph": "X",
                "ts": (start - base) * 1e6,
                "dur": max(0.0, f.get("seconds", 0.0)) * 1e6,
                "pid": 1,
                "tid": tid,
                "args": args,
            })
        elif kind == "phase":
            sec = f.get("seconds", 0.0)
            if not isinstance(sec, (int, float)):
                sec = 0.0
            tids.add(PHASE_TID)
            events.append({
                "name": rec.get("name", "?"),
                "cat": "phase",
                "ph": "X",
                "ts": (ts - sec - base) * 1e6,
                "dur": max(0.0, sec) * 1e6,
                "pid": 1,
                "tid": PHASE_TID,
            })
        elif kind == "event":
            events.append({
                "name": rec.get("name", "?"),
                "cat": "event",
                "ph": "i",
                "ts": (ts - base) * 1e6,
                "pid": 1,
                "tid": 0,
                "s": "g",
                "args": f,
            })
    meta: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
        "args": {"name": "repro"},
    }]
    for tid in sorted(tids):
        if tid == PHASE_TID:
            label = "phase charges"
        elif tid == 0:
            label = "main"
        else:
            label = f"worker {tid}"
        meta.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": label},
        })
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: list[dict], path: str | Path) -> int:
    """Write the Chrome trace JSON for ``records``; returns the event count."""
    obj = to_chrome_trace(records)
    Path(path).write_text(json.dumps(obj, separators=(",", ":")) + "\n")
    return len(obj["traceEvents"])


def lint_chrome_trace(obj) -> list[str]:
    """Structural errors of an exported trace object (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(obj, dict) or not isinstance(obj.get("traceEvents"), list):
        return ["top level must be an object with a traceEvents array"]
    for i, ev in enumerate(obj["traceEvents"]):
        if not isinstance(ev, dict):
            errors.append(f"event {i}: not an object")
            continue
        if not isinstance(ev.get("name"), str):
            errors.append(f"event {i}: missing name")
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            errors.append(f"event {i}: unsupported phase {ph!r}")
            continue
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)):
                errors.append(f"event {i}: ts must be a number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"event {i}: dur must be a non-negative number")
    return errors
