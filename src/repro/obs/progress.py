"""Heartbeat progress lines with ETA.

Long campaigns print throttled status lines to stderr (never stdout — tables
and IR stay machine-readable):

    [repro] fi.whole-program: 320/1000 (32%) | 142.3/s | eta 4.8s

A reporter always emits its first line immediately and a final line from
:meth:`ProgressReporter.finish`, so even sub-interval runs leave a visible
heartbeat; in between, lines are rate-limited to one per ``interval``
seconds. Reporters are context managers — ``finish()`` runs on exception
paths too, so a campaign killed mid-flight (e.g. by a ``HarnessError``)
still closes its heartbeat with a final line and rate.

A ``renderer`` callback replaces the default line printing entirely; the
live dashboard (:mod:`repro.obs.dashboard`) uses it to repaint a status
panel in place instead of appending lines.
"""

from __future__ import annotations

import sys
import time

__all__ = ["ProgressReporter", "progress_scope"]


class ProgressReporter:
    """Tracks completed units of a known total and prints heartbeats."""

    def __init__(
        self,
        label: str,
        total: int,
        interval: float = 1.0,
        stream=None,
        renderer=None,
    ) -> None:
        self.label = label
        self.total = max(0, total)
        self.interval = interval
        self.stream = stream
        #: Optional ``(reporter, now, final) -> None`` hook that replaces the
        #: default heartbeat line (used by the live dashboard).
        self.renderer = renderer
        self.done = 0
        self.finished = False
        self._start = time.perf_counter()
        self._last = float("-inf")
        self._emit(self._start)

    def __enter__(self) -> "ProgressReporter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish()

    def update(self, n: int = 1) -> None:
        """Record ``n`` more completed units; print if the interval elapsed."""
        self.done += n
        now = time.perf_counter()
        if now - self._last >= self.interval:
            self._emit(now)

    def finish(self) -> None:
        """Print the closing heartbeat (total time and final rate); idempotent."""
        if self.finished:
            return
        self.finished = True
        self._emit(time.perf_counter(), final=True)

    # ------------------------------------------------------------------
    def elapsed(self, now: float | None = None) -> float:
        """Seconds since the reporter started."""
        return (now if now is not None else time.perf_counter()) - self._start

    def rate(self, now: float | None = None) -> float:
        """Completed units per second so far."""
        elapsed = self.elapsed(now)
        return self.done / elapsed if elapsed > 0 else 0.0

    def _emit(self, now: float, final: bool = False) -> None:
        self._last = now
        if self.renderer is not None:
            self.renderer(self, now, final)
            return
        elapsed = now - self._start
        rate = self.done / elapsed if elapsed > 0 else 0.0
        pct = self.done / self.total if self.total else 1.0
        if final:
            eta = "done"
        elif self.done and rate > 0:
            eta = f"eta {(self.total - self.done) / rate:.1f}s"
        else:
            eta = "eta ?"
        line = (
            f"[repro] {self.label}: {self.done}/{self.total} ({pct:.0%}) "
            f"| {rate:.1f}/s | {eta}"
        )
        if final:
            line += f" in {elapsed:.1f}s"
        print(line, file=self.stream if self.stream is not None else sys.stderr)


class progress_scope:
    """Context manager over a possibly-``None`` reporter.

    ``Telemetry.progress_for`` returns ``None`` when progress is off, which
    would break a plain ``with reporter:``. This wrapper accepts either and
    guarantees ``finish()`` on every exit path::

        with progress_scope(t.progress_for("fi", n)) as prog:
            ...
            if prog: prog.update()
    """

    __slots__ = ("reporter",)

    def __init__(self, reporter: ProgressReporter | None) -> None:
        self.reporter = reporter

    def __enter__(self) -> ProgressReporter | None:
        return self.reporter

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.reporter is not None:
            self.reporter.finish()
