"""Heartbeat progress lines with ETA.

Long campaigns print throttled status lines to stderr (never stdout — tables
and IR stay machine-readable):

    [repro] fi.whole-program: 320/1000 (32%) | 142.3/s | eta 4.8s

A reporter always emits its first line immediately and a final line from
:meth:`ProgressReporter.finish`, so even sub-interval runs leave a visible
heartbeat; in between, lines are rate-limited to one per ``interval``
seconds.
"""

from __future__ import annotations

import sys
import time

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Tracks completed units of a known total and prints heartbeats."""

    def __init__(
        self,
        label: str,
        total: int,
        interval: float = 1.0,
        stream=None,
    ) -> None:
        self.label = label
        self.total = max(0, total)
        self.interval = interval
        self.stream = stream
        self.done = 0
        self._start = time.perf_counter()
        self._last = float("-inf")
        self._emit(self._start)

    def update(self, n: int = 1) -> None:
        """Record ``n`` more completed units; print if the interval elapsed."""
        self.done += n
        now = time.perf_counter()
        if now - self._last >= self.interval:
            self._emit(now)

    def finish(self) -> None:
        """Print the closing heartbeat (total time and final rate)."""
        self._emit(time.perf_counter(), final=True)

    # ------------------------------------------------------------------
    def _emit(self, now: float, final: bool = False) -> None:
        elapsed = now - self._start
        rate = self.done / elapsed if elapsed > 0 else 0.0
        pct = self.done / self.total if self.total else 1.0
        if final:
            eta = "done"
        elif self.done and rate > 0:
            eta = f"eta {(self.total - self.done) / rate:.1f}s"
        else:
            eta = "eta ?"
        line = (
            f"[repro] {self.label}: {self.done}/{self.total} ({pct:.0%}) "
            f"| {rate:.1f}/s | {eta}"
        )
        if final:
            line += f" in {elapsed:.1f}s"
        print(line, file=self.stream if self.stream is not None else sys.stderr)
        self._last = now
