"""Trace summarization: the ``repro obs report`` subcommand.

Reads a JSONL trace produced under ``--trace`` and renders:

* the **phase breakdown** (Fig. 8 style) — exclusive seconds per phase name,
  summed over all ``phase`` records;
* the **campaign table** — one row per FI campaign with outcome counts and
  measured throughput;
* the **campaign-cache effectiveness** table (hits, misses, writes, hit
  rate) whenever the run consulted a result cache;
* the **harness health** table (chunk retries, worker crashes/timeouts,
  pool respawns, serial degradations) whenever the supervisor had to
  recover from a worker failure;
* the **fabric health** table (adapters seen, chunks per adapter,
  reconnects, handshake failures) whenever campaigns dispatched over a
  :mod:`repro.fabric` transport (docs/FABRIC.md);
* the **static-model table** (predictions, section-summary cache hit rate,
  hybrid verify split, per-app rank agreement) whenever the run used
  :mod:`repro.analysis`;
* the **detector-configurations table** (per-detector assignment mix,
  predicted vs. measured overhead and coverage, per-kind detection splits)
  whenever the run validated :mod:`repro.detectors` configurations;
* the **final counters** from the trailing summary record (VM steps,
  checkpoint restores, GA generations, …);
* the **perf references** table — every ``BENCH_*.json`` artifact found
  under ``--bench-dir``, checked ReFrame-style against the tolerance bands
  the bench declared for its headline keys (see :mod:`repro.util.benchmeta`).

The report is tolerant of truncated traces (a crashed run has no summary
record); ``scripts/trace_lint.py`` is the strict half.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.fi.outcome import Outcome
from repro.obs.schema import lint_records
from repro.util.benchmeta import reference_status
from repro.util.tables import format_table

__all__ = ["load_trace", "perf_references_table", "render_report"]


def load_trace(
    path: str | Path,
    *,
    tolerate_torn_tail: bool = False,
    warnings: list[str] | None = None,
) -> list[dict]:
    """Parse a JSONL trace file into its record list.

    Mid-file garbage always raises — that is corruption, not truncation. With
    ``tolerate_torn_tail`` the one case a crashed run legitimately produces —
    a half-written *final* line (torn write) — is dropped instead, appending
    a note to ``warnings`` when a list is supplied. ``scripts/trace_lint.py``
    stays strict by never setting the flag.
    """
    records = []
    lines = [
        (i, line)
        for i, line in enumerate(Path(path).read_text().splitlines(), 1)
        if line.strip()
    ]
    for pos, (i, line) in enumerate(lines):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as e:
            if tolerate_torn_tail and pos == len(lines) - 1:
                if warnings is not None:
                    warnings.append(
                        f"{path}:{i}: dropped torn final line ({e.msg})"
                    )
                break
            raise ValueError(f"{path}:{i}: invalid trace line ({e.msg})") from e
    return records


def _phase_table(records: list[dict]) -> str | None:
    totals: dict[str, float] = {}
    for rec in records:
        if rec.get("kind") == "phase":
            sec = rec.get("fields", {}).get("seconds", 0.0)
            totals[rec["name"]] = totals.get(rec["name"], 0.0) + sec
    if not totals:
        return None
    grand = sum(totals.values())
    rows = [
        [name, f"{sec:.3f}s", f"{sec / grand:.1%}" if grand else "-"]
        for name, sec in sorted(totals.items(), key=lambda kv: -kv[1])
    ]
    rows.append(["total", f"{grand:.3f}s", "100.0%" if grand else "-"])
    return format_table(
        ["Phase", "Seconds", "Share"], rows,
        title="Phase breakdown (exclusive time, Fig. 8 style)",
    )


def _campaign_table(records: list[dict]) -> str | None:
    begun: dict[str, dict] = {}
    rows = []
    outcome_names = [o.value for o in Outcome]
    for rec in records:
        if rec.get("kind") != "event":
            continue
        cid = rec.get("campaign")
        if rec["name"] == "campaign.begin" and cid:
            begun[cid] = rec["fields"]
        elif rec["name"] == "campaign.end" and cid:
            f = rec["fields"]
            outcomes = f.get("outcomes", {})
            trials = f.get("trials", 0)
            seconds = f.get("seconds", 0.0)
            rate = trials / seconds if seconds > 0 else 0.0
            rows.append(
                [cid, f.get("label", begun.get(cid, {}).get("label", "?"))]
                + [str(outcomes.get(o, 0)) for o in outcome_names]
                + [str(trials), f"{seconds:.2f}s", f"{rate:.1f}"]
            )
            begun.pop(cid, None)
    for cid, f in begun.items():  # began but never ended (truncated trace)
        rows.append(
            [cid, f.get("label", "?")] + ["-"] * len(outcome_names)
            + [str(f.get("trials", "?")), "(unfinished)", "-"]
        )
    if not rows:
        return None
    return format_table(
        ["Campaign", "Label"] + outcome_names + ["Trials", "Wall", "Trials/s"],
        rows,
        title="FI campaigns: outcomes and throughput",
    )


def _span_table(records: list[dict]) -> str | None:
    """Span rollup: count and total seconds per span name (schema v2)."""
    totals: dict[str, list[float]] = {}
    for rec in records:
        if rec.get("kind") != "span":
            continue
        sec = rec.get("fields", {}).get("seconds", 0.0)
        if not isinstance(sec, (int, float)):
            sec = 0.0
        agg = totals.setdefault(rec["name"], [0, 0.0])
        agg[0] += 1
        agg[1] += sec
    if not totals:
        return None
    rows = [
        [name, str(int(n)), f"{sec:.3f}s"]
        for name, (n, sec) in sorted(totals.items(), key=lambda kv: -kv[1][1])
    ]
    return format_table(
        ["Span", "Count", "Total"], rows,
        title="Span rollup (inclusive time; see `repro obs export` for the tree)",
    )


def _summary_counters(records: list[dict]) -> dict:
    summary = next(
        (r for r in reversed(records) if r.get("kind") == "summary"), None
    )
    if summary is None:
        return {}
    return summary.get("fields", {}).get("counters", {}) or {}


def _cache_table(records: list[dict]) -> str | None:
    counters = _summary_counters(records)
    if not any(k.startswith("cache.") for k in counters):
        return None
    hits = counters.get("cache.hit", 0)
    misses = counters.get("cache.miss", 0)
    lookups = hits + misses
    rows = [
        ["lookups", f"{lookups:g}"],
        ["hits", f"{hits:g}"],
        ["misses", f"{misses:g}"],
        ["hit rate", f"{hits / lookups:.1%}" if lookups else "-"],
        ["writes", f"{counters.get('cache.write', 0):g}"],
        ["corrupt entries", f"{counters.get('cache.corrupt', 0):g}"],
        ["evicted entries", f"{counters.get('cache.evicted', 0):g}"],
    ]
    return format_table(
        ["Cache", "Value"], rows, title="Campaign cache effectiveness"
    )


def _harness_table(records: list[dict]) -> str | None:
    """Supervisor health: retries, crashes, hangs, degradations.

    All-zero on a healthy run, so the section only appears when the
    harness actually had to recover from something (or gave up).
    """
    counters = _summary_counters(records)
    if not any(k.startswith("harness.") for k in counters):
        return None
    rows = [
        ["chunk retries", f"{counters.get('harness.retries', 0):g}"],
        ["worker crashes", f"{counters.get('harness.worker_crashes', 0):g}"],
        ["worker timeouts", f"{counters.get('harness.worker_timeouts', 0):g}"],
        ["worker errors", f"{counters.get('harness.worker_errors', 0):g}"],
        ["pool respawns", f"{counters.get('harness.pool_respawns', 0):g}"],
        ["degraded to serial", f"{counters.get('harness.degraded', 0):g}"],
        ["chunks failed", f"{counters.get('harness.chunks_failed', 0):g}"],
    ]
    return format_table(
        ["Harness", "Value"], rows, title="Harness health (worker recovery)"
    )


def _fabric_table(records: list[dict]) -> str | None:
    """Dispatch-fabric health: fleet-wide totals plus per-adapter columns.

    Appears only when campaigns ran over a :mod:`repro.fabric` transport —
    ``fabric.*`` counters are infra-only telemetry (docs/FABRIC.md), so a
    local-pool run has none and the section vanishes. Each adapter the
    harness talked to gets its own health row (chunks served, retries it
    caused, mid-chunk disconnects), built from the per-adapter labels on
    the ``fabric.chunks.*`` / ``fabric.retries.*`` /
    ``fabric.disconnects.*`` counters — the same taxonomy the fleet
    simulator applies to defective hosts (:mod:`repro.util.health`).
    """
    counters = _summary_counters(records)
    if not any(k.startswith("fabric.") for k in counters):
        return None

    def per_label(prefix: str) -> dict:
        return {
            k[len(prefix):]: n
            for k, n in counters.items() if k.startswith(prefix)
        }

    chunks = per_label("fabric.chunks.")
    retries = per_label("fabric.retries.")
    disconnects = per_label("fabric.disconnects.")
    labels = sorted(set(chunks) | set(retries) | set(disconnects))
    rows = [
        ["adapters seen", f"{counters.get('fabric.adapters_connected', 0):g}"],
        ["chunks served", f"{sum(chunks.values()):g}"],
        ["disconnects", f"{counters.get('fabric.disconnects', 0):g}"],
        ["reconnects", f"{counters.get('fabric.reconnects', 0):g}"],
        ["handshake failures",
         f"{counters.get('fabric.handshake_failures', 0):g}"],
    ]
    summary = format_table(
        ["Fabric", "Value"], rows, title="Fabric health (dispatch transport)"
    )
    if not labels:
        return summary
    adapter_rows = [
        [
            label,
            f"{chunks.get(label, 0):g}",
            f"{retries.get(label, 0):g}",
            f"{disconnects.get(label, 0):g}",
        ]
        for label in labels
    ]
    return summary + "\n" + format_table(
        ["Adapter", "Chunks", "Retries", "Disconnects"], adapter_rows
    )


def _model_table(records: list[dict]) -> str | None:
    """Static-model activity: predictions, validations, hybrid savings.

    Appears whenever the run touched :mod:`repro.analysis` — the summary
    carries ``model.*`` counters, and each ``model.validate`` event becomes
    a per-app rank-agreement row.
    """
    counters = _summary_counters(records)
    validations = [
        r for r in records
        if r.get("kind") == "event" and r.get("name") == "model.validate"
    ]
    if not any(k.startswith("model.") for k in counters) and not validations:
        return None
    hits = counters.get("model.summary_hits", 0)
    misses = counters.get("model.summary_misses", 0)
    lookups = hits + misses
    rows = [
        ["predictions", f"{counters.get('model.predictions', 0):g}"],
        ["validations", f"{counters.get('model.validations', 0):g}"],
        ["section summaries analyzed",
         f"{counters.get('model.sections_analyzed', 0):g}"],
        ["section-summary cache hit rate",
         f"{hits / lookups:.1%}" if lookups else "-"],
        ["hybrid: FI-verified instructions",
         f"{counters.get('model.hybrid_verified', 0):g}"],
        ["hybrid: model-only instructions",
         f"{counters.get('model.hybrid_model_only', 0):g}"],
    ]
    out = format_table(
        ["Model", "Value"], rows, title="Static error-propagation model"
    )
    if validations:
        vrows = [
            [
                f.get("app", "?"),
                f"{f.get('spearman', 0.0):.3f}",
                f"{f.get('top_k_overlap', 0.0):.2f} (k={f.get('top_k', 0)})",
                f"{f.get('mean_abs_error', 0.0):.3f}",
                str(f.get("n_instructions", 0)),
            ]
            for f in (r.get("fields", {}) for r in validations)
        ]
        out += "\n\n" + format_table(
            ["App", "Spearman", "Top-k overlap", "MAE", "Instructions"],
            vrows,
            title="Model validation (predicted vs. injected)",
        )
    return out


def _detectors_table(records: list[dict]) -> str | None:
    """Detector-zoo activity: one row per validated configuration.

    Appears whenever the run touched :mod:`repro.detectors` — the summary
    carries ``detectors.*`` counters, and each ``detectors.config`` event
    becomes one row of the configurations table (predicted vs. measured,
    with the per-kind detection split from the FI campaign).
    """
    counters = _summary_counters(records)
    configs = [
        r for r in records
        if r.get("kind") == "event" and r.get("name") == "detectors.config"
    ]
    if not any(k.startswith("detectors.") for k in counters) and not configs:
        return None
    mined = counters.get("detectors.value_profile.mined", 0)
    warm = counters.get("detectors.value_profile.cache_hits", 0)
    rows = [
        ["frontiers traced", f"{counters.get('detectors.frontiers', 0):g}"],
        ["frontier points",
         f"{counters.get('detectors.frontier_points', 0):g}"],
        ["configurations validated",
         f"{counters.get('detectors.validations', 0):g}"],
        ["value profiles mined / warm", f"{mined:g} / {warm:g}"],
    ]
    assigned = sorted(
        (k.split(".", 2)[2], n) for k, n in counters.items()
        if k.startswith("detectors.assigned.")
    )
    if assigned:
        rows.append(["assignments",
                     " ".join(f"{k}:{n:g}" for k, n in assigned)])
    out = format_table(["Detectors", "Value"], rows, title="Detector zoo")
    if configs:
        crows = []
        for f in (r.get("fields", {}) for r in configs):
            mix = " ".join(
                f"{k}:{n}" for k, n in sorted(
                    (f.get("assigned") or {}).items())
            )
            per = " ".join(
                f"{k}:{v[0]}/{v[1]}" for k, v in sorted(
                    (f.get("per_detector") or {}).items())
            )
            mc = f.get("measured_coverage")
            crows.append([
                f.get("app", "?"),
                f"{f.get('budget', 0.0):.0%}",
                mix or "-",
                f"{f.get('predicted_overhead', 0.0):.1%}"
                f" / {f.get('measured_overhead', 0.0):.1%}",
                f"{f.get('predicted_coverage', 0.0):.1%}"
                f" / {mc:.1%}" if mc is not None else
                f"{f.get('predicted_coverage', 0.0):.1%} / -",
                f"{f.get('detected_rate', 0.0):.1%}",
                per or "-",
            ])
        out += "\n\n" + format_table(
            ["App", "Budget", "Assigned", "Overhead p/m",
             "Coverage p/m", "Detected", "Per-kind det/faults"],
            crows,
            title="Detector configurations (predicted vs. measured)",
        )
    return out


def _band(lo: float | None, hi: float | None) -> str:
    if lo is not None and hi is not None:
        return f"{lo:g}..{hi:g}"
    if lo is not None:
        return f">= {lo:g}"
    if hi is not None:
        return f"<= {hi:g}"
    return "-"


def perf_references_table(bench_dir: str | Path) -> str | None:
    """Perf dashboard: ``BENCH_*.json`` records vs. their declared bands.

    One row per declared reference key; records without an envelope or
    without references still get a presence row so a missing artifact is
    distinguishable from a silent one. ``None`` when the directory holds
    no bench records at all.
    """
    rows = []
    for path in sorted(Path(bench_dir).glob("BENCH_*.json")):
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            rows.append([path.name, "(unreadable)", "-", "-", "-", "FAIL"])
            continue
        if not isinstance(record, dict):
            rows.append([path.name, "(not a record)", "-", "-", "-", "FAIL"])
            continue
        status = reference_status(record)
        if not status:
            rows.append([path.name, "(no references)", "-", "-", "-", "-"])
            continue
        for key, measured, ref, lo, hi, ok in status:
            rows.append([
                path.name,
                key,
                "-" if measured is None else f"{measured:g}",
                "-" if ref is None else f"{ref:g}",
                _band(lo, hi),
                "ok" if ok else "FAIL",
            ])
    if not rows:
        return None
    return format_table(
        ["Record", "Key", "Measured", "Expected", "Band", "Status"],
        rows,
        title=f"Perf references ({bench_dir})",
    )


def _counters_table(records: list[dict]) -> str | None:
    counters = _summary_counters(records)
    if not counters:
        return None
    rows = [[k, f"{v:g}"] for k, v in sorted(counters.items())]
    return format_table(["Counter", "Value"], rows, title="Final counters")


def render_report(path: str | Path, bench_dir: str | Path | None = None) -> str:
    """Render the full text report for one trace file.

    ``bench_dir`` additionally appends the perf-references section when the
    directory holds any ``BENCH_*.json`` artifacts (a missing or empty
    directory just omits the section).
    """
    warnings: list[str] = []
    records = load_trace(path, tolerate_torn_tail=True, warnings=warnings)
    if not records:
        return f"{path}: empty trace"
    meta = records[0] if records[0].get("kind") == "meta" else None
    run = meta["run"] if meta else records[0].get("run", "?")
    span = records[-1].get("ts", 0.0) - records[0].get("ts", 0.0)
    issues = lint_records(records, require_summary=False)
    head = [
        f"trace {path}: run {run}, {len(records)} records, {span:.2f}s span"
    ]
    for w in warnings:
        head.append(f"WARNING: {w}")
    if issues:
        head.append(f"WARNING: {len(issues)} schema issue(s); first: {issues[0]}")
    sections = [
        s for s in (
            _phase_table(records),
            _campaign_table(records),
            _span_table(records),
            _cache_table(records),
            _harness_table(records),
            _fabric_table(records),
            _model_table(records),
            _detectors_table(records),
            _counters_table(records),
        ) if s
    ]
    if not sections:
        sections = ["(no phase, campaign, or summary records in this trace)"]
    if bench_dir is not None:
        perf = perf_references_table(bench_dir)
        if perf:
            sections.append(perf)
    return "\n\n".join(head + sections)
