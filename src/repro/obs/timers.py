"""Exclusive-time phase timers (absorbing ``util.timing.Stopwatch``).

Semantics
---------
Wall-clock time is charged to the **innermost active phase** — *exclusive*
time. Consequences, now defined and tested (the old ``Stopwatch`` double- or
multi-counted any overlap):

* Re-entering the same phase name inside itself never double-counts: the
  outer frame stops accruing while the inner one runs, so ``totals[name]``
  is the union of wall time spent under that name.
* Nesting different phases splits the wall clock: the parent keeps the time
  around the child, the child keeps its own. ``total()`` equals end-to-end
  wall time spent inside any phase, with no overlap inflation.
* An exception unwinds charges exactly like a normal exit.

Each charge is also emitted as a ``phase`` trace record through the active
:func:`repro.obs.core.current` telemetry (if any), which is how the Fig. 8
time breakdown lands in ``--trace`` files.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.obs.core import current

__all__ = ["PhaseTimer", "Stopwatch"]


class PhaseTimer:
    """Accumulates exclusive wall-clock time into named phases."""

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self._stack: list[str] = []
        self._mark = 0.0

    def _charge(self, name: str, dt: float) -> None:
        self.totals[name] = self.totals.get(name, 0.0) + dt
        t = current()
        if t is not None:
            t.emit_phase(name, dt)

    @contextmanager
    def phase(self, name: str):
        """Context manager charging elapsed time exclusively to ``name``."""
        now = time.perf_counter()
        if self._stack:
            # Suspend the enclosing phase: charge it up to this instant.
            self._charge(self._stack[-1], now - self._mark)
        self._stack.append(name)
        self._mark = now
        try:
            yield
        finally:
            now = time.perf_counter()
            self._charge(name, now - self._mark)
            self._stack.pop()
            self._mark = now  # resume the enclosing phase from here

    def total(self) -> float:
        """Sum of all phase times (== wall time spent inside phases)."""
        return sum(self.totals.values())

    def fractions(self) -> dict[str, float]:
        """Per-phase fraction of the total (empty dict if nothing recorded)."""
        t = self.total()
        if t <= 0:
            return {}
        return {k: v / t for k, v in self.totals.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v:.3f}s" for k, v in self.totals.items())
        return f"{type(self).__name__}({parts})"


#: Backwards-compatible name — the MINPSID pipeline's original timer.
Stopwatch = PhaseTimer
