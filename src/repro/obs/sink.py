"""Trace sinks: where telemetry records go.

A sink receives schema-conformant record dicts (see
:func:`repro.obs.events.make_record`). The :class:`NullSink` keeps disabled
telemetry free of I/O; the :class:`JsonlTraceSink` writes one JSON object per
line. Sinks are single-writer by design — only the parent process ever owns a
file-backed sink; worker telemetry is metrics-only and reduced through the
result channel (see :mod:`repro.obs.metrics`).
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["TraceSink", "NullSink", "MemorySink", "JsonlTraceSink"]


class TraceSink:
    """Interface: ``write`` one record dict, ``close`` when the session ends."""

    def write(self, record: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Default: nothing to release."""


class NullSink(TraceSink):
    """Discards everything (the disabled-telemetry sink)."""

    def write(self, record: dict) -> None:
        pass


class MemorySink(TraceSink):
    """Buffers records in memory — the test suite's sink."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def write(self, record: dict) -> None:
        self.records.append(record)


class JsonlTraceSink(TraceSink):
    """Appends records as JSON lines to ``path`` (truncates on open)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "w", encoding="utf-8")

    def write(self, record: dict) -> None:
        if self._fh is None:
            raise ValueError(f"trace sink {self.path} already closed")
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
