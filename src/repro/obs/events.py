"""Trace record construction and schema constants.

Every line of a JSONL trace is one *record*: a JSON object with exactly the
keys in :data:`RECORD_KEYS`, in that order. Keeping the key set fixed (absent
values are ``null``) makes traces trivially machine-parseable and lets
``scripts/trace_lint.py`` validate them without a schema library.

Record kinds
------------
``meta``
    First record of every trace: ``name="trace.meta"``, ``fields`` carries the
    schema version and producer.
``event``
    A domain event (``campaign.begin``, ``ga.generation``, ``vm.profile``, …).
``phase``
    One exclusive-time charge from a :class:`~repro.obs.timers.PhaseTimer`;
    ``fields["seconds"]`` sums by ``name`` into the Fig. 8 breakdown.
``summary``
    Last record of a cleanly closed trace: the final metrics snapshot.
``span``
    One closed interval in the hierarchical span tree (schema v2). Emitted
    at span *exit*; ``fields`` carries ``span_id``, ``parent_id`` (``null``
    for a root), ``start`` (wall-clock begin), ``seconds`` (duration), and
    optionally ``infra: true`` for spans whose shape depends on the harness
    configuration (worker count, chunking) rather than on the workload.
"""

from __future__ import annotations

__all__ = ["SCHEMA_VERSION", "RECORD_KEYS", "KINDS", "make_record", "jsonable"]

#: Version stamped into the ``trace.meta`` record; bump on key-set changes
#: (v2 added the ``span`` record kind).
SCHEMA_VERSION = 2

#: The exact key set of every trace record.
RECORD_KEYS = ("ts", "kind", "name", "run", "campaign", "trial", "fields")

#: Allowed values of the ``kind`` key.
KINDS = ("meta", "event", "phase", "summary", "span")


def jsonable(value):
    """Coerce a field value into plain JSON-serializable data.

    Sets become sorted lists and tuples become lists; mappings recurse. The
    coercion keeps traces stable across Python's nondeterministic set order.
    """
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted(jsonable(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def make_record(
    ts: float,
    kind: str,
    name: str,
    run: str,
    campaign: str | None = None,
    trial: int | None = None,
    fields: dict | None = None,
) -> dict:
    """Build one schema-conformant trace record."""
    return {
        "ts": ts,
        "kind": kind,
        "name": name,
        "run": run,
        "campaign": campaign,
        "trial": trial,
        "fields": jsonable(fields) if fields else {},
    }
