"""Live campaign dashboard: an in-place TTY status panel.

``--dashboard`` on ``repro fi`` / ``repro protect`` replaces the scrolling
heartbeat lines with a small panel repainted in place on every throttled
progress emit. The panel reads the *live merged* metrics of the installed
telemetry — worker deltas land there with each completed result batch — so
it shows, mid-campaign:

* throughput (done/total, rate, ETA) from the active progress reporter;
* worker health (``harness.*`` retries, crashes, timeouts, respawns);
* campaign-cache hit rate (``cache.*``);
* batch-engine detach rate and occupancy signals (``batch.*``).

The dashboard writes only to the progress stream (stderr by default) and
never emits trace records, so campaign outcomes and traces stay bit-identical
with it on or off. Repainting uses two ANSI sequences (cursor-up and
erase-below); on a dumb terminal the panel degrades to appended blocks.
"""

from __future__ import annotations

import sys

__all__ = ["Dashboard"]

_CURSOR_UP = "\x1b[{n}F"   # move to column 0, n lines up
_ERASE_BELOW = "\x1b[J"    # clear from cursor to end of screen


class Dashboard:
    """Throttled in-place renderer fed by ``ProgressReporter`` emits."""

    def __init__(self, stream=None, ansi: bool | None = None) -> None:
        self.stream = stream
        self._painted = 0   # lines currently on screen (0 = nothing yet)
        self._closed = False
        if ansi is None:
            out = stream if stream is not None else sys.stderr
            ansi = bool(getattr(out, "isatty", lambda: False)())
        self.ansi = ansi

    # ------------------------------------------------------------------
    def render(self, telemetry, reporter, final: bool = False) -> None:
        """Repaint the panel from the telemetry's current metrics."""
        if self._closed:
            return
        lines = self._lines(telemetry, reporter, final)
        out = self.stream if self.stream is not None else sys.stderr
        if self.ansi and self._painted:
            out.write(_CURSOR_UP.format(n=self._painted) + _ERASE_BELOW)
        out.write("\n".join(lines) + "\n")
        try:
            out.flush()
        except (AttributeError, OSError):
            pass
        self._painted = len(lines)

    def close(self) -> None:
        """Stop repainting; the last painted panel is left on screen."""
        self._closed = True

    # ------------------------------------------------------------------
    def _lines(self, telemetry, reporter, final: bool) -> list[str]:
        snap = telemetry.metrics.snapshot()
        counters = snap.get("counters", {})
        done, total = reporter.done, reporter.total
        pct = done / total if total else 1.0
        rate = reporter.rate()
        if final:
            eta = f"done in {reporter.elapsed():.1f}s"
        elif done and rate > 0:
            eta = f"eta {(total - done) / rate:.1f}s"
        else:
            eta = "eta ?"
        bar_w = 24
        fill = int(round(pct * bar_w))
        bar = "#" * fill + "-" * (bar_w - fill)
        lines = [
            f"[repro] {reporter.label}",
            f"  [{bar}] {done}/{total} ({pct:.0%}) | {rate:.1f}/s | {eta}",
        ]
        crashes = counters.get("harness.worker_crashes", 0)
        timeouts = counters.get("harness.worker_timeouts", 0)
        retries = counters.get("harness.retries", 0)
        respawns = counters.get("harness.pool_respawns", 0)
        degraded = counters.get("harness.degraded", 0)
        health = "ok" if not (crashes or timeouts or retries) else "recovering"
        if degraded:
            health = "degraded-to-serial"
        lines.append(
            f"  workers: {health} | crashes {crashes:g} | timeouts {timeouts:g}"
            f" | retries {retries:g} | respawns {respawns:g}"
        )
        hits = counters.get("cache.hit", 0)
        misses = counters.get("cache.miss", 0)
        lookups = hits + misses
        if lookups:
            lines.append(
                f"  cache: {hits / lookups:.1%} hit ({hits:g}/{lookups:g})"
                f" | writes {counters.get('cache.write', 0):g}"
            )
        btrials = counters.get("batch.trials", 0)
        if btrials:
            detached = counters.get("batch.detached", 0)
            lines.append(
                f"  batch: {detached / btrials:.1%} detached"
                f" ({detached:g}/{btrials:g})"
                f" | reconverged {counters.get('batch.reconverged', 0):g}"
                f" | batches {counters.get('batch.batches', 0):g}"
            )
        return lines
