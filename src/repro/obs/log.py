"""Diagnostic logging honoring ``-v``/``--log-level``.

All diagnostic output (anything that is *about* a run rather than a result)
goes through the ``repro`` logger to **stderr**, keeping stdout clean for
machine-readable tables and IR. The default level is WARNING, so library use
stays silent; the CLI raises it with ``-v`` (INFO) / ``-vv`` (DEBUG) or an
explicit ``--log-level``.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "configure_logging", "resolve_level"]

_ROOT = logging.getLogger("repro")
_ROOT.addHandler(logging.NullHandler())

LEVELS = ("debug", "info", "warning", "error", "critical")


def get_logger(name: str | None = None) -> logging.Logger:
    """The ``repro`` logger, or a child of it."""
    return _ROOT.getChild(name) if name else _ROOT


def resolve_level(verbose: int = 0, log_level: str | None = None) -> int:
    """Map CLI flags to a logging level; an explicit ``--log-level`` wins."""
    if log_level:
        return getattr(logging, log_level.upper())
    if verbose >= 2:
        return logging.DEBUG
    if verbose == 1:
        return logging.INFO
    return logging.WARNING


def configure_logging(
    verbose: int = 0,
    log_level: str | None = None,
    stream=None,
) -> logging.Logger:
    """Install a stderr handler on the ``repro`` logger and set its level.

    Idempotent: reconfiguring replaces the previous handler, so repeated CLI
    invocations in one process (the test suite) never stack handlers.
    """
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        logging.Formatter("[repro] %(levelname)s %(name)s: %(message)s")
    )
    _ROOT.handlers[:] = [h for h in _ROOT.handlers
                         if isinstance(h, logging.NullHandler)]
    _ROOT.addHandler(handler)
    _ROOT.setLevel(resolve_level(verbose, log_level))
    return _ROOT
