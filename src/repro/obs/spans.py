"""Hierarchical spans: causally nested intervals over the flat trace.

PR 2's telemetry answers *what happened* (events, counters, phase totals);
spans answer *under what* it happened. A ``span`` record (schema v2) closes
one wall-clock interval and names its parent, so a trace reconstructs the
causal tree campaign → chunk → trial → vm.run → checkpoint.restore /
batch.reconverge even when the leaves ran in pool workers.

Usage::

    with span("campaign", {"label": "needle"}) as sp:
        ...                      # nested spans parent under sp.span_id
        sp.fields["trials"] = n  # attributes may be added until exit

Nesting is ambient: the installed :class:`~repro.obs.core.Telemetry` keeps a
span stack, and the innermost open span becomes the parent of the next one.
Workers buffer their span records (their sink is a ``NullSink``) and the
campaign dispatcher ships them home inside result batches, re-parented under
the campaign span via the ``span_root`` seed (see ``fi/campaign.py``).

Determinism
-----------
Span *shape* is part of the reproducibility story, but only where the
workload controls it: spans whose existence depends on harness configuration
(chunking varies with the worker count, per-trial timing spans exist only on
the scalar engine) are marked ``infra: true`` and excluded — with their
descendants — from :func:`structural_signature`, mirroring the existing rule
that ``harness.*`` counters sit outside the deterministic-counter guarantee.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.obs.core import current
from repro.obs.events import make_record

__all__ = [
    "SpanHandle",
    "span",
    "span_records",
    "span_tree",
    "structural_signature",
]

#: Span attributes that participate in the structural signature. Timing,
#: engine, and pid fields intentionally do not: the signature must be stable
#: across worker counts, engines, and wall-clock noise.
_SIG_FIELDS = ("label", "trials")


class SpanHandle:
    """What :func:`span` yields: the allocated id plus mutable attributes.

    ``span_id`` is ``None`` when no telemetry is installed (the whole span
    is then a no-op); ``fields`` may be mutated until the block exits.
    """

    __slots__ = ("span_id", "fields")

    def __init__(self, span_id: str | None, fields: dict) -> None:
        self.span_id = span_id
        self.fields = fields


@contextmanager
def span(
    name: str,
    fields: dict | None = None,
    *,
    campaign: str | None = None,
    trial: int | None = None,
    infra: bool = False,
):
    """Open one span for the duration of the block (no-op when untraced).

    The span record is emitted at exit — children therefore precede their
    parent in the trace. ``infra=True`` marks spans whose shape depends on
    the harness configuration rather than the workload (excluded from
    :func:`structural_signature`).
    """
    t = current()
    attrs = dict(fields) if fields else {}
    if t is None:
        yield SpanHandle(None, attrs)
        return
    sid = t.next_span_id()
    parent = t.current_span()
    handle = SpanHandle(sid, attrs)
    t.span_begin(sid)
    start = time.time()
    try:
        yield handle
    finally:
        end = time.time()
        body = {
            "span_id": sid,
            "parent_id": parent,
            "start": start,
            "seconds": end - start,
        }
        if infra:
            body["infra"] = True
        body.update(handle.fields)
        # Attributes must not shadow the identity/timing keys.
        body["span_id"], body["parent_id"] = sid, parent
        t.span_end(
            make_record(end, "span", name, t.run_id, campaign, trial, body)
        )


def span_records(records: list[dict]) -> list[dict]:
    """The ``span`` records of a parsed trace, in emission order."""
    return [r for r in records if r.get("kind") == "span"]


def span_tree(records: list[dict]) -> tuple[list[dict], dict[str, dict]]:
    """Materialize the span forest of a trace.

    Returns ``(roots, by_id)`` where each node is
    ``{"record": rec, "children": [node, ...]}``. Children are ordered by
    span *start* time (emission order is exit order, which inverts nesting).
    Orphans — spans whose parent never closed, e.g. in a truncated trace —
    are treated as roots so a partial tree still renders.
    """
    nodes: dict[str, dict] = {}
    for rec in span_records(records):
        sid = rec["fields"].get("span_id")
        if isinstance(sid, str) and sid and sid not in nodes:
            nodes[sid] = {"record": rec, "children": []}
    roots: list[dict] = []
    for node in nodes.values():
        pid = node["record"]["fields"].get("parent_id")
        if isinstance(pid, str) and pid in nodes and pid != node["record"]["fields"]["span_id"]:
            nodes[pid]["children"].append(node)
        else:
            roots.append(node)
    def start_of(node: dict) -> float:
        s = node["record"]["fields"].get("start")
        return s if isinstance(s, (int, float)) else 0.0
    for node in nodes.values():
        node["children"].sort(key=start_of)
    roots.sort(key=start_of)
    return roots, nodes


def _signature_of(node: dict, include_infra: bool):
    rec = node["record"]
    f = rec["fields"]
    if not include_infra and f.get("infra"):
        return None  # infra span: pruned with its whole subtree
    children = tuple(
        sig for sig in (
            _signature_of(c, include_infra) for c in node["children"]
        ) if sig is not None
    )
    attrs = tuple((k, f[k]) for k in _SIG_FIELDS if k in f)
    return (rec["name"], attrs, tuple(sorted(children)))


def structural_signature(records: list[dict], *, include_infra: bool = False):
    """A hashable shape of the span forest, stable across harness configs.

    Timing, ids, pids, and (by default) ``infra`` spans are excluded; what
    remains — span names, workload attributes (:data:`_SIG_FIELDS`), and
    parent/child structure — must be identical across ``REPRO_WORKERS``
    settings and engines for the same campaign. Children are sorted, so
    scheduling order does not leak into the signature.
    """
    roots, _ = span_tree(records)
    sigs = tuple(
        sig for sig in (_signature_of(r, include_infra) for r in roots)
        if sig is not None
    )
    return tuple(sorted(sigs))
