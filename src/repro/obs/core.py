"""The active telemetry context.

One :class:`Telemetry` at a time is *installed* per process; instrumented
call sites fetch it with :func:`current` and do nothing when it returns
``None`` — a single function call and pid comparison, so un-instrumented
runs are effectively free. :func:`session` installs a real telemetry for the
duration of a ``with`` block (the CLI's ``--trace``/``--progress`` flags map
straight onto it).

Multiprocessing
---------------
:func:`current` is pid-guarded: a forked pool worker inherits the parent's
module state but must never write to the parent's trace file, so an
inherited telemetry reads as "none" in the child. Campaign workers instead
call :func:`install_worker` to get a **metrics-only** telemetry (events are
discarded, counters accumulate) and ship drained deltas back with each
result batch; the parent merges them. Deterministic counters therefore come
out identical whatever the worker count.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

from repro.obs.events import SCHEMA_VERSION, make_record
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressReporter
from repro.obs.sink import JsonlTraceSink, NullSink, TraceSink

__all__ = ["Telemetry", "current", "session", "install_worker"]

#: Environment override for the heartbeat interval (seconds); tests set 0.
PROGRESS_INTERVAL_ENV = "REPRO_PROGRESS_INTERVAL"


class Telemetry:
    """A telemetry context: one sink, one metrics registry, one run id."""

    def __init__(
        self,
        sink: TraceSink | None = None,
        run_id: str | None = None,
        progress: bool = False,
        progress_interval: float | None = None,
        progress_stream=None,
        is_worker: bool = False,
    ) -> None:
        self.sink = sink if sink is not None else NullSink()
        self.metrics = MetricsRegistry()
        self.run_id = run_id or f"r{os.getpid()}-{time.time_ns() & 0xFFFFFFFF:08x}"
        self.progress = progress
        if progress_interval is None:
            raw = os.environ.get(PROGRESS_INTERVAL_ENV, "").strip()
            try:
                progress_interval = float(raw) if raw else 1.0
            except ValueError:
                progress_interval = 1.0
        self.progress_interval = progress_interval
        self.progress_stream = progress_stream
        self.is_worker = is_worker
        self.pid = os.getpid()
        self._campaigns = 0
        self._closed = False
        # --- hierarchical spans (schema v2) ---------------------------------
        # `span_root` seeds the parent of this context's first span; workers
        # get it from the dispatching parent so their subtrees attach under
        # the campaign span. Worker span records are buffered in `_span_out`
        # (the sink is a NullSink there) and shipped home via drain_spans().
        self._span_stack: list[str] = []
        self._span_seq = 0
        self.span_root: str | None = None
        self._span_out: list[dict] = []
        #: Optional live-dashboard renderer (see :mod:`repro.obs.dashboard`).
        self.dashboard = None

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------
    def emit(
        self,
        name: str,
        fields: dict | None = None,
        kind: str = "event",
        campaign: str | None = None,
        trial: int | None = None,
    ) -> None:
        """Write one trace record to the sink."""
        self.sink.write(
            make_record(time.time(), kind, name, self.run_id, campaign, trial, fields)
        )

    def emit_phase(self, name: str, seconds: float) -> None:
        """One exclusive-time charge (see :mod:`repro.obs.timers`)."""
        self.emit(name, {"seconds": seconds}, kind="phase")

    # ------------------------------------------------------------------
    # Spans (hierarchical; see repro.obs.spans for the context manager)
    # ------------------------------------------------------------------
    def next_span_id(self) -> str:
        """Deterministic span id: ``s{n}`` in the parent, ``w{pid}-{n}`` in
        workers (worker ids never collide with parent ids)."""
        self._span_seq += 1
        if self.is_worker:
            return f"w{self.pid}-{self._span_seq}"
        return f"s{self._span_seq}"

    def current_span(self) -> str | None:
        """The innermost open span id, else this context's seeded root."""
        return self._span_stack[-1] if self._span_stack else self.span_root

    def span_begin(self, span_id: str) -> None:
        """Push an opened span onto the ambient nesting stack."""
        self._span_stack.append(span_id)

    def span_end(self, record: dict) -> None:
        """Pop the stack and emit (or, in a worker, buffer) the span record."""
        if self._span_stack:
            self._span_stack.pop()
        if self.is_worker:
            self._span_out.append(record)
        else:
            self.sink.write(record)

    def drain_spans(self) -> list[dict]:
        """Take the buffered worker span records (ships in result batches)."""
        out, self._span_out = self._span_out, []
        return out

    # ------------------------------------------------------------------
    # Metrics (thin forwards so call sites only touch the telemetry)
    # ------------------------------------------------------------------
    def count(self, name: str, n: int | float = 1) -> None:
        self.metrics.count(name, n)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    # ------------------------------------------------------------------
    # Campaign / progress helpers
    # ------------------------------------------------------------------
    def new_campaign(self) -> str:
        """Sequential campaign id within this run (deterministic)."""
        self._campaigns += 1
        return f"c{self._campaigns:03d}"

    def progress_for(self, label: str, total: int) -> ProgressReporter | None:
        """A heartbeat reporter, or ``None`` when progress is off.

        When a live dashboard is attached, its renderer replaces the plain
        heartbeat lines: each throttled emit repaints the dashboard in place
        from this telemetry's current metrics instead of printing a new line.
        """
        if not self.progress:
            return None
        renderer = None
        if self.dashboard is not None:
            dashboard = self.dashboard
            renderer = lambda reporter, now, final: dashboard.render(
                self, reporter, final=final
            )
        return ProgressReporter(
            label, total, interval=self.progress_interval,
            stream=self.progress_stream, renderer=renderer,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open_trace(self) -> None:
        """Emit the leading ``trace.meta`` record."""
        self.emit(
            "trace.meta",
            {"schema": SCHEMA_VERSION, "producer": "repro.obs", "pid": self.pid},
            kind="meta",
        )

    def close(self) -> None:
        """Emit the trailing summary (final metrics snapshot) and release."""
        if self._closed:
            return
        self._closed = True
        snap = self.metrics.snapshot()
        self.emit(
            "trace.summary",
            {
                "counters": snap["counters"],
                "gauges": snap["gauges"],
                "histograms": self.metrics.histograms(),
            },
            kind="summary",
        )
        self.sink.close()


# ---------------------------------------------------------------------------
# The process-local active context
# ---------------------------------------------------------------------------

_active: Telemetry | None = None


def current() -> Telemetry | None:
    """The installed telemetry, or ``None`` (also for inherited-by-fork)."""
    t = _active
    if t is None or t.pid != os.getpid():
        return None
    return t


def _install(t: Telemetry | None) -> None:
    global _active
    _active = t


def install_worker(span_root: str | None = None) -> Telemetry:
    """Install a metrics-only telemetry in a pool worker process.

    Events go to a :class:`NullSink`; counters/histograms accumulate locally
    until the worker batch function drains them into its return value.
    ``span_root`` seeds the parent span id so worker span subtrees attach
    under the dispatching campaign's span once shipped home.
    """
    t = Telemetry(sink=NullSink(), run_id=f"w{os.getpid()}", is_worker=True)
    t.span_root = span_root
    _install(t)
    return t


@contextmanager
def session(
    trace=None,
    progress: bool = False,
    run_id: str | None = None,
    progress_interval: float | None = None,
    progress_stream=None,
    sink: TraceSink | None = None,
    dashboard=None,
):
    """Install a telemetry context for the duration of the block.

    ``trace`` is a JSONL path (``None`` keeps events in the provided ``sink``
    or discards them); ``progress`` turns on heartbeat lines. ``dashboard``
    attaches a live TTY renderer (see :mod:`repro.obs.dashboard`) and implies
    ``progress``. Sessions nest by shadowing: the previous context is
    restored on exit.
    """
    if sink is None:
        sink = JsonlTraceSink(trace) if trace is not None else NullSink()
    t = Telemetry(
        sink=sink,
        run_id=run_id,
        progress=progress or dashboard is not None,
        progress_interval=progress_interval,
        progress_stream=progress_stream,
    )
    t.dashboard = dashboard
    prev = _active
    _install(t)
    t.open_trace()
    try:
        yield t
    finally:
        _install(prev)
        try:
            if dashboard is not None:
                dashboard.close()
        finally:
            t.close()
