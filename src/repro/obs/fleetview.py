"""Fleet trace summarization: the ``repro obs fleet`` subcommand.

Reads a JSONL trace recorded under ``--trace`` while ``repro fleet run``
(or ``repro fleet sweep``) executed and renders the fleet's resilience
story from its ``fleet.*`` events and counters:

* the **escape/cost overview** from the trailing ``fleet.summary`` event
  (one per simulation — a sweep trace renders one section per policy);
* the **quarantine timeline** — every ``fleet.test_fail``,
  ``fleet.quarantine``, ``fleet.readmit``, and ``fleet.degraded`` event
  in round order, the audit trail of the policy's decisions;
* the **fleet counters** (jobs, escapes, detections, tests, catches,
  quarantines) from the summary record.

Everything rendered here is deterministic given the simulation seed, so
CI byte-diffs the output across worker counts (``fleet-smoke``).
"""

from __future__ import annotations

from repro.util.tables import format_table

__all__ = ["render_fleet"]


def _fmt(v) -> str:
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, float):
        return f"{v:.6f}"
    return str(v)


def _overview_tables(records: list[dict]) -> list[str]:
    order = [
        ("hosts", "hosts"),
        ("rounds", "rounds"),
        ("policy", "policy"),
        ("jobs", "jobs run"),
        ("escapes", "SDC escapes"),
        ("escape_rate", "escape rate"),
        ("throughput_cost", "throughput cost"),
        ("quarantines", "quarantines"),
        ("caught_all", "all defects caught"),
    ]
    tables = []
    sims = [r for r in records if r.get("name") == "fleet.summary"]
    for idx, rec in enumerate(sims):
        fields = rec.get("fields", {})
        rows = [[label, _fmt(fields[key])] for key, label in order if key in fields]
        title = "Fleet escape-rate summary"
        if len(sims) > 1:
            title += f" (simulation {idx + 1}/{len(sims)})"
        tables.append(format_table(["Metric", "Value"], rows, title=title))
    return tables


def _timeline_table(records: list[dict]) -> str | None:
    interesting = {
        "fleet.test_fail": "in-field test caught",
        "fleet.quarantine": "quarantined",
        "fleet.readmit": "readmitted",
        "fleet.degraded": "capacity floor readmission",
    }
    rows = []
    for rec in records:
        label = interesting.get(rec.get("name", ""))
        if label is None:
            continue
        f = rec.get("fields", {})
        detail = []
        if "opcode" in f:
            detail.append(f"opcode {f['opcode']}")
        if "score" in f:
            detail.append(f"evidence {f['score']}")
        if "active" in f:
            detail.append(f"active {f['active']}")
        rows.append([
            str(f.get("round", "-")),
            f"host{f['host']}" if "host" in f else "fleet",
            label,
            ", ".join(detail) if detail else "-",
        ])
    if not rows:
        return None
    return format_table(
        ["Round", "Host", "Event", "Detail"],
        rows,
        title="Quarantine timeline",
    )


def _counters_table(records: list[dict]) -> str | None:
    from repro.obs.report import _summary_counters

    counters = _summary_counters(records)
    fleet = sorted(
        (k, v) for k, v in counters.items() if k.startswith("fleet.")
    )
    if not fleet:
        return None
    rows = [[k, f"{v:g}"] for k, v in fleet]
    return format_table(["Counter", "Value"], rows, title="Fleet counters")


def render_fleet(records: list[dict]) -> str:
    """Render the full fleet report; raises nothing on non-fleet traces.

    A trace with no ``fleet.*`` records renders a one-line note instead of
    empty tables, mirroring how ``repro obs report`` omits idle sections.
    """
    sections: list[str] = []
    sections.extend(_overview_tables(records))
    timeline = _timeline_table(records)
    if timeline is not None:
        sections.append(timeline)
    counters = _counters_table(records)
    if counters is not None:
        sections.append(counters)
    if not sections:
        return "no fleet.* records in this trace (run `repro fleet run --trace ...`)"
    return "\n\n".join(sections)
