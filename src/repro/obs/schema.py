"""Trace schema validation (the engine behind ``scripts/trace_lint.py``).

Validation is hand-rolled — the container image carries no JSON-schema
library, and the schema is small enough that explicit checks double as its
documentation.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.events import KINDS, RECORD_KEYS, SCHEMA_VERSION

__all__ = ["validate_record", "validate_span_fields", "lint_records", "lint_trace"]


def validate_span_fields(fields: dict) -> list[str]:
    """Structural errors of a ``span`` record's ``fields`` object.

    A span carries its identity and timing inside ``fields`` so the outer
    record key set stays fixed across schema versions: ``span_id`` (non-empty
    string), ``parent_id`` (``null`` for a root span, else a string),
    ``start`` (wall-clock begin, a number), and ``seconds`` (non-negative
    duration). Extra keys are free-form span attributes.
    """
    errors: list[str] = []
    span_id = fields.get("span_id")
    if not isinstance(span_id, str) or not span_id:
        errors.append("span_id must be a non-empty string")
    if "parent_id" not in fields:
        errors.append("parent_id is required (null for a root span)")
    elif fields["parent_id"] is not None and not isinstance(fields["parent_id"], str):
        errors.append("parent_id must be null or a string")
    start = fields.get("start")
    if not isinstance(start, (int, float)) or isinstance(start, bool):
        errors.append("start must be a number")
    seconds = fields.get("seconds")
    if not isinstance(seconds, (int, float)) or isinstance(seconds, bool):
        errors.append("seconds must be a number")
    elif seconds < 0:
        errors.append("seconds must be non-negative")
    if "infra" in fields and not isinstance(fields["infra"], bool):
        errors.append("infra must be a boolean when present")
    return errors


def validate_record(obj) -> list[str]:
    """Structural errors of one parsed trace record (empty list = valid)."""
    if not isinstance(obj, dict):
        return [f"record is {type(obj).__name__}, expected object"]
    errors: list[str] = []
    keys = tuple(obj.keys())
    if set(keys) != set(RECORD_KEYS):
        missing = set(RECORD_KEYS) - set(keys)
        extra = set(keys) - set(RECORD_KEYS)
        if missing:
            errors.append(f"missing keys: {sorted(missing)}")
        if extra:
            errors.append(f"unexpected keys: {sorted(extra)}")
        return errors
    if not isinstance(obj["ts"], (int, float)) or isinstance(obj["ts"], bool):
        errors.append("ts must be a number")
    if obj["kind"] not in KINDS:
        errors.append(f"kind {obj['kind']!r} not in {KINDS}")
    if not isinstance(obj["name"], str) or not obj["name"]:
        errors.append("name must be a non-empty string")
    if not isinstance(obj["run"], str) or not obj["run"]:
        errors.append("run must be a non-empty string")
    if obj["campaign"] is not None and not isinstance(obj["campaign"], str):
        errors.append("campaign must be null or a string")
    if obj["trial"] is not None and (
        not isinstance(obj["trial"], int) or isinstance(obj["trial"], bool)
    ):
        errors.append("trial must be null or an integer")
    if not isinstance(obj["fields"], dict):
        errors.append("fields must be an object")
    elif any(not isinstance(k, str) for k in obj["fields"]):
        errors.append("fields keys must be strings")
    elif obj["kind"] == "span":
        errors.extend(validate_span_fields(obj["fields"]))
    return errors


def _lint_span_tree(records: list[dict]) -> list[str]:
    """Well-formedness of the span forest: unique ids, resolvable parents,
    no cycles.

    Spans are emitted at exit, so a child always precedes its parent in the
    trace — resolution therefore runs over the full record list, not
    prefix-ordered. Roots (``parent_id: null``) are allowed in any number:
    worker subtrees are re-parented by the campaign dispatcher, but a trace
    from a bare ``session()`` may legitimately hold several top-level spans.
    """
    errors: list[str] = []
    spans = [
        (i, r) for i, r in enumerate(records, 1) if r["kind"] == "span"
    ]
    by_id: dict[str, str | None] = {}
    for i, rec in spans:
        sid = rec["fields"]["span_id"]
        if sid in by_id:
            errors.append(f"record {i}: duplicate span_id {sid!r}")
            continue
        by_id[sid] = rec["fields"]["parent_id"]
    for i, rec in spans:
        pid = rec["fields"]["parent_id"]
        if pid is not None and pid not in by_id:
            errors.append(
                f"record {i}: parent_id {pid!r} does not resolve to any span"
            )
    # Cycle check: walk each span to a root; a revisit inside one walk is a
    # cycle. `safe` memoizes spans already proven to terminate.
    safe: set[str] = set()
    for sid in by_id:
        seen: set[str] = set()
        cur: str | None = sid
        while cur is not None and cur in by_id and cur not in safe:
            if cur in seen:
                errors.append(f"span {sid!r}: parent chain contains a cycle")
                break
            seen.add(cur)
            cur = by_id[cur]
        else:
            safe.update(seen)
    return errors


def lint_records(records: list[dict], *, require_summary: bool = True) -> list[str]:
    """File-level errors of an ordered record list (empty list = valid)."""
    errors: list[str] = []
    if not records:
        return ["trace is empty"]
    for i, rec in enumerate(records, 1):
        for e in validate_record(rec):
            errors.append(f"record {i}: {e}")
    if errors:
        return errors
    head = records[0]
    if head["kind"] != "meta" or head["name"] != "trace.meta":
        errors.append("first record must be the trace.meta record")
    elif head["fields"].get("schema") != SCHEMA_VERSION:
        errors.append(
            f"schema version {head['fields'].get('schema')!r} != {SCHEMA_VERSION}"
        )
    runs = {rec["run"] for rec in records}
    if len(runs) > 1:
        errors.append(f"multiple run ids in one trace: {sorted(runs)}")
    metas = [i for i, r in enumerate(records) if r["kind"] == "meta"]
    if metas != [0]:
        errors.append("exactly one meta record allowed, at position 0")
    summaries = [i for i, r in enumerate(records) if r["kind"] == "summary"]
    if require_summary and summaries != [len(records) - 1]:
        errors.append("trace must end with exactly one summary record")
    elif not require_summary and len(summaries) > 1:
        errors.append("at most one summary record allowed")
    errors.extend(_lint_span_tree(records))
    return errors


def lint_trace(path: str | Path, *, require_summary: bool = True) -> list[str]:
    """Lint a JSONL trace file; returns a list of error strings."""
    path = Path(path)
    records: list[dict] = []
    errors: list[str] = []
    try:
        text = path.read_text()
    except OSError as e:
        return [f"cannot read {path}: {e}"]
    for i, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            errors.append(f"line {i}: blank line")
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as e:
            errors.append(f"line {i}: invalid JSON ({e.msg})")
    if errors:
        return errors
    return lint_records(records, require_summary=require_summary)
