"""Trace schema validation (the engine behind ``scripts/trace_lint.py``).

Validation is hand-rolled — the container image carries no JSON-schema
library, and the schema is small enough that explicit checks double as its
documentation.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.events import KINDS, RECORD_KEYS, SCHEMA_VERSION

__all__ = ["validate_record", "lint_records", "lint_trace"]


def validate_record(obj) -> list[str]:
    """Structural errors of one parsed trace record (empty list = valid)."""
    if not isinstance(obj, dict):
        return [f"record is {type(obj).__name__}, expected object"]
    errors: list[str] = []
    keys = tuple(obj.keys())
    if set(keys) != set(RECORD_KEYS):
        missing = set(RECORD_KEYS) - set(keys)
        extra = set(keys) - set(RECORD_KEYS)
        if missing:
            errors.append(f"missing keys: {sorted(missing)}")
        if extra:
            errors.append(f"unexpected keys: {sorted(extra)}")
        return errors
    if not isinstance(obj["ts"], (int, float)) or isinstance(obj["ts"], bool):
        errors.append("ts must be a number")
    if obj["kind"] not in KINDS:
        errors.append(f"kind {obj['kind']!r} not in {KINDS}")
    if not isinstance(obj["name"], str) or not obj["name"]:
        errors.append("name must be a non-empty string")
    if not isinstance(obj["run"], str) or not obj["run"]:
        errors.append("run must be a non-empty string")
    if obj["campaign"] is not None and not isinstance(obj["campaign"], str):
        errors.append("campaign must be null or a string")
    if obj["trial"] is not None and (
        not isinstance(obj["trial"], int) or isinstance(obj["trial"], bool)
    ):
        errors.append("trial must be null or an integer")
    if not isinstance(obj["fields"], dict):
        errors.append("fields must be an object")
    elif any(not isinstance(k, str) for k in obj["fields"]):
        errors.append("fields keys must be strings")
    return errors


def lint_records(records: list[dict], *, require_summary: bool = True) -> list[str]:
    """File-level errors of an ordered record list (empty list = valid)."""
    errors: list[str] = []
    if not records:
        return ["trace is empty"]
    for i, rec in enumerate(records, 1):
        for e in validate_record(rec):
            errors.append(f"record {i}: {e}")
    if errors:
        return errors
    head = records[0]
    if head["kind"] != "meta" or head["name"] != "trace.meta":
        errors.append("first record must be the trace.meta record")
    elif head["fields"].get("schema") != SCHEMA_VERSION:
        errors.append(
            f"schema version {head['fields'].get('schema')!r} != {SCHEMA_VERSION}"
        )
    runs = {rec["run"] for rec in records}
    if len(runs) > 1:
        errors.append(f"multiple run ids in one trace: {sorted(runs)}")
    metas = [i for i, r in enumerate(records) if r["kind"] == "meta"]
    if metas != [0]:
        errors.append("exactly one meta record allowed, at position 0")
    summaries = [i for i, r in enumerate(records) if r["kind"] == "summary"]
    if require_summary and summaries != [len(records) - 1]:
        errors.append("trace must end with exactly one summary record")
    elif not require_summary and len(summaries) > 1:
        errors.append("at most one summary record allowed")
    return errors


def lint_trace(path: str | Path, *, require_summary: bool = True) -> list[str]:
    """Lint a JSONL trace file; returns a list of error strings."""
    path = Path(path)
    records: list[dict] = []
    errors: list[str] = []
    try:
        text = path.read_text()
    except OSError as e:
        return [f"cannot read {path}: {e}"]
    for i, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            errors.append(f"line {i}: blank line")
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as e:
            errors.append(f"line {i}: invalid JSON ({e.msg})")
    if errors:
        return errors
    return lint_records(records, require_summary=require_summary)
