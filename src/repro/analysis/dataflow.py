"""Dataflow framework over the mini-IR: def-use graph and dominator tree.

The error-propagation model asks two structural questions of a module:

* **Where can a corrupted value flow?** — answered by the def-use graph.
  Every use is annotated with a semantic *role* (data operand, stored value,
  store/load address, branch condition, call argument, returned value,
  emitted output, duplication check), because the masking classification
  depends on how a consumer uses the value, not just which consumer it is.
* **How much of a function does a branch control?** — approximated from the
  dominator tree: the blocks dominated by a ``condbr``'s successors bound
  the region whose execution a corrupted condition can redirect.

Both structures are purely static, deterministic in the module text, and
cheap (linear in instructions / near-linear in blocks), so they can be
rebuilt per function during summary construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.module import Module
from repro.ir.values import Argument

__all__ = [
    "Use",
    "DefUseGraph",
    "build_def_use",
    "dominator_tree",
    "dominated_blocks",
    "loop_depth",
]

#: Use roles, in the vocabulary the masking classification consumes.
ROLE_DATA = "data"  # plain data operand of a computation
ROLE_STORE_VALUE = "store-value"  # the value being written to memory
ROLE_STORE_ADDR = "store-addr"  # the address a store writes through
ROLE_LOAD_ADDR = "load-addr"  # the address a load reads through
ROLE_BRANCH_COND = "branch-cond"  # condbr condition (control sink)
ROLE_SELECT_COND = "select-cond"  # select condition (data-level control)
ROLE_CALL_ARG = "call-arg"  # argument passed to a callee
ROLE_RET_VALUE = "ret-value"  # value returned to the caller
ROLE_EMIT = "emit"  # program output (the SDC comparison stream)
ROLE_CHECK = "check"  # duplication check operand (detector)


@dataclass(frozen=True)
class Use:
    """One use of a value: the consuming instruction and the operand role."""

    user: Instruction
    #: Operand position within the user (phi incomings use their list index).
    index: int
    #: One of the ``ROLE_*`` constants.
    role: str


@dataclass
class DefUseGraph:
    """Module-wide def-use edges, keyed by the *producing* value.

    Instruction results key by iid; function arguments key by
    ``(function name, argument index)`` — the two source kinds the
    propagation model seeds.
    """

    #: Uses of each instruction result, keyed by producer iid.
    users: dict[int, list[Use]] = field(default_factory=dict)
    #: Uses of each formal argument, keyed by (function name, arg index).
    arg_users: dict[tuple[str, int], list[Use]] = field(default_factory=dict)

    def uses_of(self, iid: int) -> list[Use]:
        return self.users.get(iid, [])

    def uses_of_arg(self, fn_name: str, index: int) -> list[Use]:
        return self.arg_users.get((fn_name, index), [])


def _role_of(user: Instruction, index: int) -> str:
    """Semantic role of operand ``index`` of ``user``."""
    op = user.opcode
    if op == "store":
        return ROLE_STORE_VALUE if index == 0 else ROLE_STORE_ADDR
    if op == "load":
        return ROLE_LOAD_ADDR
    if op == "condbr":
        return ROLE_BRANCH_COND
    if op == "select" and index == 0:
        return ROLE_SELECT_COND
    if op == "call":
        return ROLE_CALL_ARG
    if op == "ret":
        return ROLE_RET_VALUE
    if op == "emit":
        return ROLE_EMIT
    if op in ("check", "checkrange"):
        return ROLE_CHECK
    return ROLE_DATA


def _record(graph: DefUseGraph, fn: Function, value, use: Use) -> None:
    if isinstance(value, Instruction):
        graph.users.setdefault(value.iid, []).append(use)
    elif isinstance(value, Argument):
        graph.arg_users.setdefault((fn.name, value.index), []).append(use)
    # Constants and globals are not corruption sources; skip.


def build_def_use(module: Module) -> DefUseGraph:
    """Build the def-use graph of a finalized module.

    Iteration follows iid order, so use lists are deterministic — the model's
    fixed point and every downstream prediction inherit that determinism.
    """
    graph = DefUseGraph()
    for fn in module.functions.values():
        for instr in fn.instructions():
            for i, op in enumerate(instr.operands):
                _record(graph, fn, op, Use(instr, i, _role_of(instr, i)))
            if instr.opcode == "phi":
                for i, (_, val) in enumerate(instr.attrs.get("incoming", [])):
                    _record(graph, fn, val, Use(instr, i, ROLE_DATA))
    return graph


def dominator_tree(fn: Function) -> dict[str, str | None]:
    """Immediate dominators of a function's blocks (entry maps to ``None``).

    Classic iterative dataflow over reverse postorder (Cooper–Harvey–
    Kennedy). Unreachable blocks are absent from the result.
    """
    entry = fn.entry.name
    # Reverse postorder over the intra-function CFG.
    order: list[str] = []
    seen: set[str] = set()

    def dfs(name: str) -> None:
        seen.add(name)
        for succ in fn.blocks[name].successors():
            if succ not in seen:
                dfs(succ)
        order.append(name)

    dfs(entry)
    rpo = list(reversed(order))
    rpo_index = {name: i for i, name in enumerate(rpo)}
    preds: dict[str, list[str]] = {name: [] for name in rpo}
    for name in rpo:
        for succ in fn.blocks[name].successors():
            if succ in rpo_index:
                preds[succ].append(name)

    idom: dict[str, str | None] = {entry: entry}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while rpo_index[a] > rpo_index[b]:
                a = idom[a]
            while rpo_index[b] > rpo_index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for name in rpo:
            if name == entry:
                continue
            candidates = [p for p in preds[name] if p in idom]
            if not candidates:
                continue
            new = candidates[0]
            for p in candidates[1:]:
                new = intersect(new, p)
            if idom.get(name) != new:
                idom[name] = new
                changed = True
    idom[entry] = None
    return idom


def dominated_blocks(idom: dict[str, str | None], root: str) -> set[str]:
    """Blocks dominated by ``root`` (inclusive), from an idom map."""
    out = {root}
    changed = True
    while changed:
        changed = False
        for name, parent in idom.items():
            if parent in out and name not in out:
                out.add(name)
                changed = True
    return out


def _dominates(idom: dict[str, str | None], a: str, b: str) -> bool:
    """True if ``a`` dominates ``b`` (walking b's idom chain)."""
    node: str | None = b
    while node is not None:
        if node == a:
            return True
        node = idom[node]
    return False


def loop_depth(fn: Function) -> dict[str, int]:
    """Natural-loop nesting depth per reachable block (0 = not in a loop).

    Back edges are CFG edges ``P → H`` where ``H`` dominates ``P``; the
    natural loop of such an edge is ``H`` plus every block that reaches
    ``P`` backwards without passing through ``H``. Depth counts how many
    distinct loop headers' loops contain a block — the error-propagation
    model uses the *difference* in depth along a def-use edge to amplify
    loop-invariant fan-out.
    """
    idom = dominator_tree(fn)
    preds: dict[str, list[str]] = {name: [] for name in idom}
    for name in idom:
        for succ in fn.blocks[name].successors():
            if succ in idom:
                preds[succ].append(name)
    loops: dict[str, set[str]] = {}
    for tail in idom:
        for head in fn.blocks[tail].successors():
            if head not in idom or not _dominates(idom, head, tail):
                continue
            body = loops.setdefault(head, {head})
            stack = [tail]
            while stack:
                node = stack.pop()
                if node in body:
                    continue
                body.add(node)
                stack.extend(p for p in preds[node] if p not in body)
    depth = {name: 0 for name in idom}
    for body in loops.values():
        for name in body:
            depth[name] += 1
    return depth
