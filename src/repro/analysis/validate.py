"""Validation harness: the model's predictions vs. injected ground truth.

The static model earns its keep only if its *ranking* of instructions by
SDC-proneness tracks what Monte-Carlo fault injection measures — the
knapsack consumes relative order and magnitude, not absolute calibration.
This module quantifies that agreement:

* **Spearman rank correlation** between predicted and measured per-iid SDC
  probabilities (tie-aware, computed over instructions that executed);
* **top-k overlap** — of the k instructions FI ranks most SDC-prone, the
  fraction the model also puts in its own top k (k defaults to 20% of the
  executed set, roughly the protection budgets the paper sweeps);
* **mean absolute error**, for calibration drift watching.

:func:`validate_model` emits the scores as a ``model.validate`` telemetry
event so ``repro obs report`` can tabulate them per app/input.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.model import PredictedResult
from repro.obs.core import current as _obs_current

__all__ = ["ValidationResult", "spearman", "top_k_overlap", "validate_model"]


def _ranks(values: list[float]) -> list[float]:
    """Fractional (midrank) ranks — ties share their average position."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        mid = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = mid
        i = j + 1
    return ranks


def spearman(xs: list[float], ys: list[float]) -> float:
    """Tie-aware Spearman rank correlation (Pearson on midranks).

    Returns 0.0 for degenerate inputs (fewer than two points, or a constant
    series) — no correlation claim can be made either way.
    """
    if len(xs) != len(ys):
        raise ValueError("spearman: length mismatch")
    n = len(xs)
    if n < 2:
        return 0.0
    rx = _ranks(list(xs))
    ry = _ranks(list(ys))
    mx = sum(rx) / n
    my = sum(ry) / n
    cov = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    vx = sum((a - mx) ** 2 for a in rx)
    vy = sum((b - my) ** 2 for b in ry)
    if vx <= 0.0 or vy <= 0.0:
        return 0.0
    return cov / (vx * vy) ** 0.5


def top_k_overlap(
    predicted: dict[int, float], measured: dict[int, float], k: int
) -> float:
    """|model top-k ∩ FI top-k| / k over the shared iid set (ties by iid)."""
    iids = sorted(set(predicted) & set(measured))
    if not iids or k <= 0:
        return 0.0
    k = min(k, len(iids))
    top_pred = set(
        sorted(iids, key=lambda i: (-predicted[i], i))[:k]
    )
    top_meas = set(
        sorted(iids, key=lambda i: (-measured[i], i))[:k]
    )
    return len(top_pred & top_meas) / k


@dataclass(frozen=True)
class ValidationResult:
    """Agreement scores between model predictions and FI ground truth."""

    app: str
    n_instructions: int
    spearman: float
    top_k: int
    top_k_overlap: float
    mean_abs_error: float
    predicted_mean: float
    measured_mean: float

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "n_instructions": self.n_instructions,
            "spearman": self.spearman,
            "top_k": self.top_k,
            "top_k_overlap": self.top_k_overlap,
            "mean_abs_error": self.mean_abs_error,
            "predicted_mean": self.predicted_mean,
            "measured_mean": self.measured_mean,
        }


def validate_model(
    predicted: PredictedResult,
    fi_result,
    app: str = "",
    top_k: int | None = None,
) -> ValidationResult:
    """Score ``predicted`` against an FI ``PerInstructionResult``.

    Only instructions that executed in the golden run participate: the model
    pins never-executed iids to 0 by construction, and FI never observes
    them either, so including them would inflate agreement with free ties.
    """
    counts = predicted.profile.instr_counts
    measured = {
        iid: p
        for iid, p in fi_result.sdc_probabilities().items()
        if counts[iid] > 0
    }
    pred = {iid: predicted.sdc_probability(iid) for iid in measured}
    iids = sorted(measured)
    xs = [pred[i] for i in iids]
    ys = [measured[i] for i in iids]
    if top_k is None:
        top_k = max(1, len(iids) // 5)
    rho = spearman(xs, ys)
    overlap = top_k_overlap(pred, measured, top_k)
    mae = (
        sum(abs(a - b) for a, b in zip(xs, ys)) / len(iids) if iids else 0.0
    )
    result = ValidationResult(
        app=app,
        n_instructions=len(iids),
        spearman=rho,
        top_k=top_k,
        top_k_overlap=overlap,
        mean_abs_error=mae,
        predicted_mean=sum(xs) / len(xs) if xs else 0.0,
        measured_mean=sum(ys) / len(ys) if ys else 0.0,
    )
    t = _obs_current()
    if t is not None:
        t.count("model.validations")
        t.emit("model.validate", result.to_dict())
    return result
