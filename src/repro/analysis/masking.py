"""Per-instruction masking classification for the error-propagation model.

A flipped bit dies on its way to the program output whenever an instruction
*masks* it: an ``and`` with a sparse constant clears it, a ``trunc`` drops
it, a comparison collapses a 64-bit difference into one bit that usually
does not change, a corrupted address crashes (detected, not silent), a
low-order mantissa bit disappears below the app's output tolerance. This
module assigns every def-use edge a **silent-survival factor** — the
probability that a corrupted operand value silently alters the consumer's
result (or reaches the consumer's sink) — and every fault site a
**bit-observability factor** averaging over the uniformly sampled bit
positions of the paper's fault model.

The factors are deliberately coarse: the model competes with Monte-Carlo
fault injection on *ranking* (which instructions are SDC-prone), not on
third-decimal calibration. All constants live on :class:`MaskingModel` so
the validation harness can sweep them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis import dataflow as df
from repro.ir.instructions import Instruction
from repro.ir.values import Constant

__all__ = ["MaskingModel", "DEFAULT_MASKING"]


def _popcount(x: int) -> int:
    return bin(x & ((1 << 64) - 1)).count("1")


@dataclass(frozen=True)
class MaskingModel:
    """Tunable constants of the masking classification."""

    #: Silent survival through a comparison: a flipped operand bit usually
    #: leaves the boolean unchanged (the operands were not near the
    #: decision boundary), so most corruption dies here.
    cmp_equality: float = 0.30  # eq/ne: any bit matters iff values tie
    cmp_ordered: float = 0.22  # slt/ole/…: only high-order bits flip order
    #: …except trip-count comparisons: a loop counter is a *small* integer
    #: marching toward its bound, so almost every flipped bit is above the
    #: bound's magnitude and flips the exit decision outright.
    cmp_loop_bound: float = 0.80

    #: Fallback sink weight of a store whose target object cannot be
    #: resolved statically (the resolvable common case flows through the
    #: memory-object channels instead).
    store_value_sink: float = 0.80
    #: Probability a stored value is read back before being overwritten —
    #: the per-hop masking of flowing through a memory object.
    mem_readback: float = 0.65
    #: Residual sink weight of stores to globals/pointer arguments: the
    #: object outlives the function, so a caller (or a later phase) may
    #: read what this function's summary cannot see.
    mem_escape: float = 0.35
    #: A corrupted store address writes the right value to the wrong cell
    #: (and leaves the right cell stale): silent only when it stays in
    #: bounds and the clobbered cell matters.
    store_addr_sink: float = 0.30
    #: A corrupted load address frequently leaves the array (trap/crash —
    #: detected, not silent) or lands on a similar neighbouring value.
    load_addr: float = 0.25
    #: gep index corruption behaves like address corruption one hop early —
    #: and high-order index bits virtually always trap.
    gep_index: float = 0.18

    #: Control sink: a flipped branch decision redirects one iteration of
    #: control flow. Scaled by the dominated-region mass of the branch.
    branch_base: float = 0.15
    branch_region: float = 0.45
    #: A flipped *loop* branch (a condbr with a back edge) changes the trip
    #: count: iterations are skipped or replayed wholesale, which rarely
    #: stays under any output tolerance.
    branch_loop: float = 0.85

    #: select condition flips pick the other arm — a data-level control
    #: effect, silent only when the arms actually differ and the difference
    #: survives downstream (min/max selects pick a *similar* neighbour).
    select_cond: float = 0.25
    #: select arms mask: a corrupted candidate only propagates when the
    #: select actually picks it (~the other arm half the time, and min/max
    #: chains actively route around corrupted-large values).
    select_arm: float = 0.40

    #: Multiplication masks when the other operand is (near) zero.
    mul_survival: float = 0.95
    #: Division/remainder as divisor: large corruptions shrink the result
    #: toward zero or trap on zero.
    div_divisor: float = 0.70
    #: Remainder results are bounded by the divisor: high-order corruption
    #: of the dividend is wrapped away.
    rem_dividend: float = 0.60

    #: Bounded/clamping float intrinsics (sin, cos, floor) absorb magnitude.
    fmath_bounded: float = 0.70
    fmath_monotone: float = 0.90  # sqrt, exp, log, fabs

    #: Fraction of a float's 64 sampled bits whose flip is observable at all
    #: (sign + exponent always; mantissa above the tolerance floor).
    float_exponent_bits: int = 12

    #: Loop-invariant fan-out: a value defined outside a loop but used
    #: inside it gets ~``loop_fanout`` independent chances (per nesting
    #: level, capped at ``loop_amp_cap``) for its corruption to escape.
    loop_fanout: int = 8
    loop_amp_cap: int = 32

    #: Fixed-point sweeps of the intra-function propagation. Each sweep
    #: models one more loop traversal a circulating corruption survives, so
    #: accumulator corruption saturates toward certainty while heavily
    #: masked cycles stay low. Part of the summary fingerprint.
    loop_sweeps: int = 8

    def fingerprint(self) -> dict:
        """Stable dict of every constant — folded into summary cache keys."""
        from dataclasses import asdict

        return asdict(self)

    # ------------------------------------------------------------------
    def use_survival(self, use: df.Use) -> float:
        """Silent-survival factor of one def-use edge (producer → use)."""
        user: Instruction = use.user
        op = user.opcode
        role = use.role
        if role == df.ROLE_EMIT:
            return 1.0
        if role == df.ROLE_RET_VALUE:
            return 1.0
        if role == df.ROLE_STORE_VALUE:
            return self.store_value_sink
        if role == df.ROLE_STORE_ADDR:
            return self.store_addr_sink
        if role == df.ROLE_LOAD_ADDR:
            return self.load_addr
        if role == df.ROLE_CHECK:
            return 0.0  # a detector catches it: detected, never silent
        if role == df.ROLE_SELECT_COND:
            return self.select_cond
        if role in (df.ROLE_BRANCH_COND, df.ROLE_CALL_ARG):
            # Weighted by the caller (branch region mass / callee summary).
            return 1.0
        # ---- plain data operands -------------------------------------
        if op == "select":
            return self.select_arm  # indices 1/2: the candidate values
        if op in ("icmp", "fcmp"):
            pred = user.attrs.get("pred", "eq")
            if pred in ("eq", "ne", "oeq", "one"):
                return self.cmp_equality
            return self.cmp_ordered
        if op == "and":
            other = user.operands[1 - use.index]
            if isinstance(other, Constant):
                width = max(1, user.type.width)
                return min(1.0, _popcount(int(other.value)) / width)
            return 0.5
        if op == "or":
            other = user.operands[1 - use.index]
            if isinstance(other, Constant):
                width = max(1, user.type.width)
                return min(1.0, (width - _popcount(int(other.value))) / width)
            return 0.5
        if op in ("mul", "fmul"):
            return self.mul_survival
        if op in ("sdiv", "udiv", "fdiv") and use.index == 1:
            return self.div_divisor
        if op in ("srem", "urem"):
            return self.rem_dividend if use.index == 0 else self.div_divisor
        if op in ("shl", "lshr", "ashr") and use.index == 0:
            amount = user.operands[1]
            if isinstance(amount, Constant):
                width = max(1, user.type.width)
                kept = max(0, width - int(amount.value))
                return kept / width
            return 0.75
        if op == "trunc":
            src = user.operands[0].type.width or 64
            return min(1.0, user.type.width / src)
        if op in ("fptosi", "fptoui"):
            return 0.70  # fractional mantissa bits are discarded
        if op == "fptrunc":
            return 0.80
        if op == "gep":
            return self.gep_index if use.index == 1 else 0.5
        if op == "fmath":
            fn = user.attrs.get("fn", "")
            if fn in ("sin", "cos", "floor"):
                return self.fmath_bounded
            return self.fmath_monotone
        # add/sub/xor/zext/sext/fpext/sitofp/uitofp/fadd/fsub/phi/select
        # arms/… propagate the corruption essentially intact.
        return 1.0

    # ------------------------------------------------------------------
    def bit_observability(self, instr: Instruction, rel_tol: float) -> float:
        """Average observability of a uniformly sampled bit flip in the
        result of ``instr``.

        Integer and boolean results change value under every flip. Float
        results hide mantissa bits whose relative error falls below the
        app's output tolerance — the same criterion the outcome classifier
        applies (:func:`repro.fi.outcome.outputs_equal`).
        """
        t = instr.type
        if not t.is_float:
            return 1.0
        width = t.width or 64
        mantissa = 52 if width == 64 else 23
        if rel_tol <= 0.0:
            return 1.0
        # Mantissa bit k (from the MSB of the mantissa) perturbs the value
        # by ~2**-k relative; bits finer than the tolerance are invisible.
        observable_mantissa = min(
            mantissa, max(0, round(math.log2(1.0 / rel_tol)))
        )
        visible = self.float_exponent_bits + observable_mantissa
        return min(1.0, visible / width)


#: The calibrated default used across the CLI, pipelines, and tests.
DEFAULT_MASKING = MaskingModel()
