"""The static error-propagation model: per-instruction SDC prediction.

Composes the per-function section summaries (:mod:`repro.analysis.
summaries`) across the call graph and joins them with a golden run's
dynamic counts (:class:`repro.vm.profiler.DynamicProfile`) to predict, for
every fault-injectable instruction, the probability that a random bit flip
in its result silently corrupts the program output — the quantity the FI
campaigns in :mod:`repro.fi` estimate by Monte Carlo, here for the price of
one golden run and a linear pass over the IR.

Composition (DETOx/FastFlip-style):

* ``sigma(f, s)`` — probability a corruption at source *s* of function *f*
  silently reaches a global sink (emitted output, memory, redirected
  control), including through callees via their argument summaries;
* ``rho(f, s)`` — probability it reaches *f*'s return value;
* ``CTX(f)`` — probability a corrupted return value of *f* reaches a sink,
  averaged over *f*'s dynamic call sites;
* prediction: ``P(i) = bits(i) × min(1, sigma + rho × CTX)`` where
  ``bits(i)`` is the bit-observability of the instruction's result type
  under the app's output tolerance, and instructions that never executed
  predict 0 (nothing to corrupt — the paper's convention).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.analysis.masking import DEFAULT_MASKING, MaskingModel
from repro.analysis.summaries import FunctionSummary, module_summaries
from repro.fi.faultmodel import injectable_iids
from repro.ir.module import Module
from repro.obs.core import current as _obs_current
from repro.vm.profiler import DynamicProfile

__all__ = [
    "PredictedResult",
    "predict_sdc_probabilities",
    "predicted_whole_program_sdc",
    "model_verify_set",
    "density_ranked",
]

#: Sweeps of the cross-function resolution fixed point (bounds propagation
#: through call chains and call-site loops; call graphs here are shallow).
_CALL_SWEEPS = 6


@dataclass
class PredictedResult:
    """Model predictions for one (program, input) pair.

    Duck-typed like :class:`repro.fi.campaign.PerInstructionResult`: it
    exposes ``sdc_probability``/``sdc_probabilities`` and carries the golden
    profile, so every profile consumer accepts either source.
    """

    #: Predicted SDC probability per injectable iid (0 if never executed).
    sdc_prob: dict[int, float]
    profile: DynamicProfile
    #: No faults were injected to produce this.
    trials_per_instruction: int = 0
    #: Propagation probability before bit-observability scaling (diagnostics).
    propagation: dict[int, float] = field(default_factory=dict, repr=False)

    def sdc_probability(self, iid: int) -> float:
        return self.sdc_prob.get(iid, 0.0)

    def sdc_probabilities(self) -> dict[int, float]:
        return dict(self.sdc_prob)

    def ranked(self) -> list[tuple[int, float]]:
        """(iid, prediction) sorted most-SDC-prone first (ties by iid)."""
        return sorted(self.sdc_prob.items(), key=lambda kv: (-kv[1], kv[0]))


def _resolve_sources(
    module: Module,
    summaries: dict[str, FunctionSummary],
) -> tuple[dict[tuple[str, int], float], dict[tuple[str, int], float],
           dict[tuple[str, int], float], dict[tuple[str, int], float]]:
    """Fixed point of the cross-function composition.

    Returns ``(sigma, rho)`` keyed by (function, local instruction index)
    and ``(arg_sigma, arg_rho)`` keyed by (function, argument index).
    """
    sigma: dict[tuple[str, int], float] = {}
    rho: dict[tuple[str, int], float] = {}
    arg_sigma: dict[tuple[str, int], float] = {}
    arg_rho: dict[tuple[str, int], float] = {}
    for name, s in summaries.items():
        for idx in s.instr:
            sigma[(name, idx)] = 0.0
            rho[(name, idx)] = 0.0
        for k in s.args:
            arg_sigma[(name, k)] = 0.0
            arg_rho[(name, k)] = 0.0

    def resolve(name: str, ch) -> tuple[float, float]:
        s_val = ch.sink
        r_val = ch.ret
        for (callee, arg, res), w in ch.calls.items():
            a_s = arg_sigma.get((callee, arg), 0.0)
            a_r = arg_rho.get((callee, arg), 0.0)
            cont_s = sigma.get((name, res), 0.0) if res >= 0 else 0.0
            cont_r = rho.get((name, res), 0.0) if res >= 0 else 0.0
            s_val += w * (a_s + a_r * cont_s)
            r_val += w * a_r * cont_r
        return min(1.0, s_val), min(1.0, r_val)

    for _ in range(_CALL_SWEEPS):
        changed = 0.0
        for name, summ in summaries.items():
            for idx, ch in summ.instr.items():
                new_s, new_r = resolve(name, ch)
                changed = max(
                    changed,
                    abs(new_s - sigma[(name, idx)]),
                    abs(new_r - rho[(name, idx)]),
                )
                sigma[(name, idx)] = new_s
                rho[(name, idx)] = new_r
            for k, ch in summ.args.items():
                new_s, new_r = resolve(name, ch)
                changed = max(
                    changed,
                    abs(new_s - arg_sigma[(name, k)]),
                    abs(new_r - arg_rho[(name, k)]),
                )
                arg_sigma[(name, k)] = new_s
                arg_rho[(name, k)] = new_r
        if changed < 1e-9:
            break
    return sigma, rho, arg_sigma, arg_rho


def _return_contexts(
    module: Module,
    summaries: dict[str, FunctionSummary],
    sigma: dict[tuple[str, int], float],
    rho: dict[tuple[str, int], float],
    iid_of: dict[tuple[str, int], int],
    counts: list[int],
) -> dict[str, float]:
    """CTX(f): silent-sink probability of f's returned value, per function.

    Call sites are weighted by dynamic execution counts so a helper called
    a million times from the hot loop inherits the hot context; functions
    never called dynamically fall back to uniform static weights.
    """
    entry = next(iter(module.functions), None)
    ctx = {name: 0.0 for name in module.functions}
    # (caller, call local idx, callee) triples.
    sites = [
        (caller, idx, callee)
        for caller, summ in summaries.items()
        for idx, callee in summ.call_sites
    ]
    for _ in range(_CALL_SWEEPS):
        changed = 0.0
        for name in module.functions:
            if name == entry:
                continue  # the harness discards @main's return value
            num = 0.0
            den = 0.0
            for caller, idx, callee in sites:
                if callee != name:
                    continue
                iid = iid_of.get((caller, idx))
                weight = float(counts[iid]) if iid is not None else 0.0
                if weight <= 0.0:
                    weight = 1e-12  # static fallback keeps dead sites tiny
                reach = sigma.get((caller, idx), 0.0) + rho.get(
                    (caller, idx), 0.0
                ) * ctx[caller]
                num += weight * min(1.0, reach)
                den += weight
            new = num / den if den > 0 else 0.0
            changed = max(changed, abs(new - ctx[name]))
            ctx[name] = new
        if changed < 1e-9:
            break
    return ctx


def predict_sdc_probabilities(
    module: Module,
    dyn_profile: DynamicProfile,
    rel_tol: float = 0.0,
    masking: MaskingModel = DEFAULT_MASKING,
    cache=None,
) -> PredictedResult:
    """Predict per-instruction SDC probabilities without injecting a fault.

    ``cache`` controls section-summary reuse (``None`` = ambient store,
    ``False`` = always recompute). The prediction itself is a pure function
    of (module text, masking constants, dynamic profile, ``rel_tol``), so
    it is deterministic across runs, workers, and cache states.
    """
    t0 = time.perf_counter()
    summaries = module_summaries(module, masking, cache=cache)
    # local index <-> module iid maps, per function.
    iid_of: dict[tuple[str, int], int] = {}
    for name, fn in module.functions.items():
        for idx, instr in enumerate(fn.instructions()):
            iid_of[(name, idx)] = instr.iid
    sigma, rho, _arg_s, _arg_r = _resolve_sources(module, summaries)
    ctx = _return_contexts(
        module, summaries, sigma, rho, iid_of, dyn_profile.instr_counts
    )

    prop: dict[int, float] = {}
    pred: dict[int, float] = {}
    by_iid = {iid: key for key, iid in iid_of.items()}
    for iid in injectable_iids(module):
        if dyn_profile.instr_counts[iid] == 0:
            prop[iid] = 0.0
            pred[iid] = 0.0
            continue
        name, idx = by_iid[iid]
        p = min(1.0, sigma.get((name, idx), 0.0)
                + rho.get((name, idx), 0.0) * ctx.get(name, 0.0))
        prop[iid] = p
        pred[iid] = p * masking.bit_observability(
            module.instruction(iid), rel_tol
        )
    result = PredictedResult(
        sdc_prob=pred, profile=dyn_profile, propagation=prop
    )
    t = _obs_current()
    if t is not None:
        t.count("model.predictions", len(pred))
        t.emit(
            "model.predict",
            {
                "module": module.name,
                "n_instructions": len(pred),
                "n_functions": len(module.functions),
                "whole_program_sdc": predicted_whole_program_sdc(result),
                "seconds": time.perf_counter() - t0,
            },
        )
    return result


def predicted_whole_program_sdc(predicted: PredictedResult) -> float:
    """Activation-weighted whole-program SDC probability.

    Mirrors the whole-program campaign's fault model: faults land on
    dynamic instances uniformly, so each instruction's prediction is
    weighted by its execution count.
    """
    counts = predicted.profile.instr_counts
    num = sum(p * counts[iid] for iid, p in predicted.sdc_prob.items())
    den = sum(counts[iid] for iid in predicted.sdc_prob)
    return num / den if den else 0.0


def model_verify_set(
    predicted: PredictedResult,
    cycles: dict[int, int],
    total_cycles: int,
    protection_level: float,
    verify_margin: float = 0.3,
) -> list[int]:
    """The predict-then-verify trial budget: iids worth an FI campaign.

    Ranks executed instructions by predicted benefit density (the greedy
    knapsack's criterion) and returns the **band around the knapsack
    cut**: ``verify_margin`` × the selected count on each side. A modest
    ranking error can only change the protected set near the cut —
    instructions far above it are protected either way and instructions
    far below stay out — so only the band is worth injection trials; the
    hybrid campaign pins the two unverified flanks to the band's measured
    extremes to keep the merged ranking consistent.
    """
    ranked = density_ranked(predicted, cycles, total_cycles)
    budget = protection_level * total_cycles
    spent = 0.0
    n_selected = 0
    for iid in ranked:
        w = cycles.get(iid, 0)
        if w <= 0 or spent + w <= budget:
            spent += max(0, w)
            n_selected += 1
        # Greedy keeps scanning past misfits, and so does the verify cut.
    half = math.ceil(verify_margin * max(1, n_selected))
    lo = max(0, n_selected - half)
    hi = min(len(ranked), n_selected + half)
    return sorted(ranked[lo:hi])


def density_ranked(
    predicted: PredictedResult,
    cycles: dict[int, int],
    total_cycles: int,
) -> list[int]:
    """Executed iids in the greedy knapsack's processing order.

    Benefit density under Eq. 2 is ``(p × cycles / total) / cycles`` — the
    cycle weight cancels, so the order is by predicted probability with
    the greedy's ascending-iid tie-break (zero-cycle iids sort first,
    mirroring the knapsack's free items).
    """
    counts = predicted.profile.instr_counts
    executed = [
        iid for iid, p in predicted.sdc_prob.items() if counts[iid] > 0
    ]

    def density(iid: int) -> float:
        c = cycles.get(iid, 0)
        if c <= 0:
            return float("inf")
        return predicted.sdc_prob[iid] * (c / max(1, total_cycles)) / c

    return sorted(executed, key=lambda i: (-density(i), i))
