"""Per-function section summaries of silent error propagation.

FastFlip's key idea: analyze each program *section* once, summarize how
errors entering it propagate to its boundary, and compose summaries — so
editing one section only re-analyzes that section. Our sections are
functions. A :class:`FunctionSummary` records, for every corruption source
in the function (value-producing instruction, formal argument), the
probability that the corruption *silently* reaches

* ``sink`` — an in-function global sink: an emitted output value, memory
  through a store, or a redirected branch decision;
* ``ret`` — the function's return value (to be composed with what callers
  do with the call result); and
* ``calls`` — a specific argument of a specific call site (to be composed
  with the callee's own summary), paired with the call's local result index
  so a corruption can continue through the returned value.

Summaries are purely static: dynamic execution counts join at model-build
time (:mod:`repro.analysis.model`). They are content-addressed by the
function's canonical text plus the masking-model fingerprint
(:func:`repro.cache.keys.section_summary_key`) and persisted in the ambient
:mod:`repro.cache` store, so a warm re-analysis of an unchanged function is
a dictionary read (``model.summary_hits`` counts them).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import dataflow as df
from repro.analysis.masking import DEFAULT_MASKING, MaskingModel
from repro.cache.active import active_cache
from repro.cache.keys import section_summary_key
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.module import Module
from repro.ir.printer import print_function
from repro.ir.values import Argument, GlobalArray
from repro.obs.core import current as _obs_current

__all__ = ["Channels", "FunctionSummary", "summarize_function", "module_summaries"]

#: Convergence bar of the intra-function fixed point.
_EPS = 1e-9


@dataclass
class Channels:
    """Silent-propagation probabilities of one corruption source."""

    sink: float = 0.0
    ret: float = 0.0
    #: (callee, arg index, local result index or -1) -> reach probability.
    calls: dict[tuple[str, int, int], float] = field(default_factory=dict)

    def scaled(self, factor: float) -> "Channels":
        return Channels(
            sink=self.sink * factor,
            ret=self.ret * factor,
            calls={k: w * factor for k, w in self.calls.items()},
        )

    def absorb(self, other: "Channels") -> None:
        """Noisy-or accumulate ``other`` into this channel set."""
        self.sink = _noisy_or(self.sink, other.sink)
        self.ret = _noisy_or(self.ret, other.ret)
        for k, w in other.calls.items():
            self.calls[k] = _noisy_or(self.calls.get(k, 0.0), w)

    def amplified(self, n: int) -> "Channels":
        """Noisy-or of ``n`` independent chances per channel (loop fan-out)."""
        if n <= 1:
            return self

        def amp(p: float) -> float:
            return min(1.0, 1.0 - (1.0 - p) ** n)

        return Channels(
            sink=amp(self.sink),
            ret=amp(self.ret),
            calls={k: amp(w) for k, w in self.calls.items()},
        )

    def delta(self, other: "Channels") -> float:
        d = max(abs(self.sink - other.sink), abs(self.ret - other.ret))
        for k in set(self.calls) | set(other.calls):
            d = max(d, abs(self.calls.get(k, 0.0) - other.calls.get(k, 0.0)))
        return d


def _noisy_or(a: float, b: float) -> float:
    return min(1.0, 1.0 - (1.0 - a) * (1.0 - b))


@dataclass
class FunctionSummary:
    """The composable propagation summary of one function."""

    function: str
    #: Channels per value-producing instruction, keyed by local index
    #: (position in block-order instruction iteration — stable under edits
    #: to *other* functions).
    instr: dict[int, Channels]
    #: Channels per formal argument index.
    args: dict[int, Channels]
    #: Local index of every call instruction, with its callee (used by the
    #: model to weight cross-function composition with dynamic counts).
    call_sites: list[tuple[int, str]]
    #: Static instruction count (sanity check when pairing with a module).
    n_instructions: int

    # -- (de)serialization for the content-addressed store ---------------
    def to_payload(self) -> dict:
        def enc(ch: Channels) -> dict:
            return {
                "sink": ch.sink,
                "ret": ch.ret,
                "calls": [
                    [callee, arg, res, w]
                    for (callee, arg, res), w in sorted(ch.calls.items())
                ],
            }

        return {
            "kind": "section-summary",
            "function": self.function,
            "instr": {str(i): enc(c) for i, c in sorted(self.instr.items())},
            "args": {str(i): enc(c) for i, c in sorted(self.args.items())},
            "call_sites": [[i, callee] for i, callee in self.call_sites],
            "n_instructions": self.n_instructions,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FunctionSummary | None":
        """Decode a cached payload; any malformation reads as a miss."""
        if not isinstance(payload, dict):
            return None
        if payload.get("kind") != "section-summary":
            return None
        try:
            def dec(d: dict) -> Channels:
                return Channels(
                    sink=float(d["sink"]),
                    ret=float(d["ret"]),
                    calls={
                        (str(callee), int(arg), int(res)): float(w)
                        for callee, arg, res, w in d["calls"]
                    },
                )

            return cls(
                function=str(payload["function"]),
                instr={int(i): dec(c) for i, c in payload["instr"].items()},
                args={int(i): dec(c) for i, c in payload["args"].items()},
                call_sites=[
                    (int(i), str(callee)) for i, callee in payload["call_sites"]
                ],
                n_instructions=int(payload["n_instructions"]),
            )
        except (KeyError, TypeError, ValueError):
            return None


def _branch_factor(
    fn: Function, masking: MaskingModel
) -> tuple[dict[str, float], set[str]]:
    """Control-sink factor per block holding a ``condbr``.

    The dominated-region mass of the branch's successors bounds how much of
    the function a flipped decision can redirect: a guard around the whole
    loop body weighs more than a tail check. Loop-controlling branches —
    the block has a back edge in or out (loop header or latch) — decide the
    trip count and get the much harsher ``branch_loop`` factor; the second
    return value names those blocks (their comparisons are trip-count
    comparisons, which barely mask).
    """
    idom = df.dominator_tree(fn)
    depth = df.loop_depth(fn)
    total = max(1, sum(1 for i in fn.instructions() if i.produces_value))
    factors: dict[str, float] = {}
    loop_blocks: set[str] = set()
    for blk in fn.blocks.values():
        term = blk.terminator
        if term is None or term.opcode != "condbr" or blk.name not in idom:
            continue
        # Loop-controlling: one successor leaves the blocks's innermost
        # loop while the other stays (header exit test / latch repeat test).
        d = depth.get(blk.name, 0)
        succ_depths = [depth.get(s, 0) for s in blk.successors() if s in idom]
        if d > 0 and succ_depths and min(succ_depths) < d <= max(succ_depths):
            factors[blk.name] = masking.branch_loop
            loop_blocks.add(blk.name)
            continue
        region: set[str] = set()
        for succ in blk.successors():
            if succ in idom:
                region |= df.dominated_blocks(idom, succ)
        mass = sum(
            1
            for name in region
            for i in fn.blocks[name].instructions
            if i.produces_value
        )
        factors[blk.name] = min(
            1.0, masking.branch_base + masking.branch_region * (mass / total)
        )
    return factors, loop_blocks


def _memory_base(value) -> tuple[str, object] | None:
    """The memory object an address computes into, or None if unresolved.

    Follows ``gep`` chains to an ``alloca`` (a function-local slot), a
    :class:`GlobalArray`, or a pointer :class:`Argument`. These kernels
    route *all* loop state through such objects, so resolving them turns
    opaque store-sinks into traceable store→load dataflow.
    """
    while isinstance(value, Instruction) and value.opcode == "gep":
        value = value.operands[0]
    if isinstance(value, Instruction) and value.opcode == "alloca":
        return ("slot", id(value))
    if isinstance(value, GlobalArray):
        return ("global", value.name)
    if isinstance(value, Argument):
        return ("arg", value.index)
    return None


def _compute_summary(fn: Function, masking: MaskingModel) -> FunctionSummary:
    """The intra-function propagation fixed point (no caching)."""
    # Local def-use view, keyed by object identity so the analysis works on
    # functions whose module has not (re)assigned iids yet.
    instrs = list(fn.instructions())
    local_index = {id(instr): i for i, instr in enumerate(instrs)}
    uses_by_instr: dict[int, list[df.Use]] = {}
    uses_by_arg: dict[int, list[df.Use]] = {}

    def record(value, use: df.Use) -> None:
        if isinstance(value, Instruction):
            if id(value) in local_index:
                uses_by_instr.setdefault(id(value), []).append(use)
        elif isinstance(value, Argument):
            uses_by_arg.setdefault(value.index, []).append(use)

    for instr in instrs:
        for i, op in enumerate(instr.operands):
            record(op, df.Use(instr, i, df._role_of(instr, i)))
        if instr.opcode == "phi":
            for i, (_, val) in enumerate(instr.attrs.get("incoming", [])):
                record(val, df.Use(instr, i, df.ROLE_DATA))

    branch_factors, loop_blocks = _branch_factor(fn, masking)
    depth = df.loop_depth(fn)
    call_sites = [
        (local_index[id(i)], i.attrs["callee"])
        for i in instrs
        if i.opcode == "call"
    ]
    # Comparisons deciding a loop branch: trip-count compares, barely mask.
    loop_cmp_ids: set[int] = set()
    for blk in fn.blocks.values():
        if blk.name in loop_blocks:
            cond = blk.terminator.operands[0]
            if isinstance(cond, Instruction):
                loop_cmp_ids.add(id(cond))

    # Current channel estimate per value-producing instruction / argument /
    # memory object. A memory object's channels answer: if a corrupted
    # value lands in this object, where does it silently surface?
    state: dict[int, Channels] = {
        local_index[id(i)]: Channels() for i in instrs if i.produces_value
    }
    arg_state: dict[int, Channels] = {a.index: Channels() for a in fn.args}
    loads_by_base: dict[tuple[str, object], list[int]] = {}
    mem_state: dict[tuple[str, object], Channels] = {}
    for instr in instrs:
        if instr.opcode == "load":
            base = _memory_base(instr.operands[0])
            if base is not None:
                loads_by_base.setdefault(base, []).append(
                    local_index[id(instr)]
                )
                mem_state[base] = Channels()
        elif instr.opcode == "store":
            base = _memory_base(instr.operands[1])
            if base is not None:
                mem_state.setdefault(base, Channels())

    def block_depth(instr: Instruction) -> int:
        blk = instr.parent.name if instr.parent is not None else None
        return depth.get(blk, 0)

    def amp_count(src_depth: int, user: Instruction) -> int:
        """Independent escape chances of a def feeding a deeper loop."""
        dd = block_depth(user) - src_depth
        if dd <= 0:
            return 1
        return min(masking.loop_amp_cap, masking.loop_fanout**dd)

    def channels_from_uses(uses: list[df.Use], src_depth: int) -> Channels:
        out = Channels()
        for use in uses:
            user = use.user
            role = use.role
            factor = masking.use_survival(use)
            n = amp_count(src_depth, user)
            if role == df.ROLE_EMIT:
                out.sink = _noisy_or(out.sink, factor)
            elif role == df.ROLE_RET_VALUE:
                out.ret = _noisy_or(out.ret, factor)
            elif role == df.ROLE_STORE_VALUE:
                base = _memory_base(user.operands[1])
                if base is None:
                    out.sink = _noisy_or(out.sink, masking.store_value_sink)
                else:
                    out.absorb(mem_state[base].amplified(n))
                    if base[0] != "slot":
                        out.sink = _noisy_or(out.sink, masking.mem_escape)
            elif role == df.ROLE_STORE_ADDR:
                # Wrong cell clobbered (value surfaces wherever the object
                # is read) and the right cell left stale.
                base = _memory_base(use.user.operands[1])
                reach = Channels(sink=masking.store_addr_sink)
                if base is not None:
                    reach.absorb(
                        mem_state[base].scaled(masking.store_addr_sink)
                    )
                out.absorb(reach.amplified(n))
            elif role == df.ROLE_LOAD_ADDR:
                # Wrong cell read: the load's result is silently wrong
                # whenever the stray address stays in bounds.
                consumer = state.get(local_index[id(user)])
                if consumer is not None:
                    out.absorb(
                        consumer.scaled(masking.load_addr).amplified(n)
                    )
            elif role == df.ROLE_BRANCH_COND:
                blk = user.parent.name if user.parent is not None else None
                out.sink = _noisy_or(out.sink, branch_factors.get(blk, 0.0))
            elif role == df.ROLE_CHECK:
                continue
            elif role == df.ROLE_CALL_ARG:
                res = local_index[id(user)] if user.produces_value else -1
                key = (user.attrs["callee"], use.index, res)
                out.calls[key] = _noisy_or(out.calls.get(key, 0.0), factor)
            else:
                # Data-shaped edge into a value-producing consumer (this
                # covers select/gep/phi as users too): scale the consumer's
                # own channels, with the trip-count boost for comparisons
                # that decide a loop branch.
                if id(user) in loop_cmp_ids:
                    factor = max(factor, masking.cmp_loop_bound)
                consumer = state.get(local_index[id(user)])
                if consumer is not None:
                    out.absorb(consumer.scaled(factor).amplified(n))
        return out

    # Monotone fixed point: every sweep extends the horizon by one more
    # def-use (loop) traversal; ``loop_sweeps`` bounds how many chances a
    # circulating corruption gets to escape.
    for _ in range(max(1, masking.loop_sweeps)):
        delta = 0.0
        for instr in reversed(instrs):
            if not instr.produces_value:
                continue
            idx = local_index[id(instr)]
            new = channels_from_uses(
                uses_by_instr.get(id(instr), []), block_depth(instr)
            )
            delta = max(delta, new.delta(state[idx]))
            state[idx] = new
        for base, load_idxs in loads_by_base.items():
            new = Channels()
            for li in load_idxs:
                new.absorb(state[li].scaled(masking.mem_readback))
            delta = max(delta, new.delta(mem_state[base]))
            mem_state[base] = new
        for a in fn.args:
            new = channels_from_uses(uses_by_arg.get(a.index, []), 0)
            delta = max(delta, new.delta(arg_state[a.index]))
            arg_state[a.index] = new
        if delta < _EPS:
            break

    return FunctionSummary(
        function=fn.name,
        instr=state,
        args=arg_state,
        call_sites=call_sites,
        n_instructions=len(instrs),
    )


def summarize_function(
    fn: Function,
    masking: MaskingModel = DEFAULT_MASKING,
    cache=None,
) -> FunctionSummary:
    """Summary of one function, through the content-addressed store.

    ``cache=None`` defers to the ambient :func:`repro.cache.active_cache`;
    ``cache=False`` forces a fresh computation. The key covers the
    function's canonical text and every masking constant, so a stale entry
    can never be confused for the current analysis.
    """
    store = active_cache() if cache is None else (cache or None)
    t = _obs_current()
    key = None
    if store is not None:
        key = section_summary_key(print_function(fn), masking.fingerprint())
        cached = FunctionSummary.from_payload(store.get(key))
        if cached is not None and cached.function == fn.name:
            if t is not None:
                t.count("model.summary_hits")
            return cached
    summary = _compute_summary(fn, masking)
    if t is not None:
        t.count("model.summary_misses")
        t.count("model.sections_analyzed")
    if store is not None:
        store.put(key, summary.to_payload())
    return summary


def module_summaries(
    module: Module,
    masking: MaskingModel = DEFAULT_MASKING,
    cache=None,
) -> dict[str, FunctionSummary]:
    """Summaries of every function, in deterministic function order."""
    return {
        name: summarize_function(fn, masking, cache=cache)
        for name, fn in module.functions.items()
    }
