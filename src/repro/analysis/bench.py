"""Model-vs-FI profiling speedup measurement.

The whole point of the static model is to replace a per-instruction
Monte-Carlo campaign (seconds to minutes) with a dataflow pass
(milliseconds). :func:`measure_model_speedup` times both paths on the same
(program, input) pair — cache disabled, golden profile shared — and reports
the wall-clock ratio plus the rank agreement between the two probability
maps, so speed is never reported without the accompanying fidelity number.

Consumed by ``benchmarks/test_perf_model_profile.py`` (perf gate, emits
``BENCH_model.json``) and ``scripts/bench_model.py`` (standalone CLI).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

from repro.apps import get_app
from repro.cache.active import cache_scope
from repro.sid.profiles import build_profile_from_source
from repro.vm.profiler import profile_run

__all__ = ["ModelSpeedupReport", "measure_model_speedup"]


@dataclass
class ModelSpeedupReport:
    """Timing and fidelity of the model path vs. an equivalent FI campaign."""

    app: str
    n_instructions: int
    trials_per_instruction: int
    fi_trials: int
    fi_seconds: float
    model_seconds: float
    speedup: float
    #: Rank agreement of the two probability maps (sanity, not a gate here;
    #: the accuracy gates live in :mod:`repro.exp.modelval`).
    spearman: float

    def to_dict(self) -> dict:
        return asdict(self)


def measure_model_speedup(
    app_name: str,
    trials_per_instruction: int = 12,
    seed: int = 2022,
    repeats: int = 3,
) -> ModelSpeedupReport:
    """Time ``source="model"`` against ``source="fi"`` on one app.

    Both paths receive the same pre-computed golden :class:`DynamicProfile`,
    so the measured interval is exactly the probability-source stage: the
    full per-instruction campaign on one side, the dataflow fixed point on
    the other. Caches are disabled for the timed region; the best of
    ``repeats`` runs is reported for each side.
    """
    from repro.analysis.validate import spearman as _spearman

    app = get_app(app_name)
    args, bindings = app.encode(app.reference_input)
    dyn = profile_run(app.program, args=args, bindings=bindings)

    def build(source: str):
        return build_profile_from_source(
            app.program,
            args,
            bindings,
            source=source,
            trials_per_instruction=trials_per_instruction,
            seed=seed,
            rel_tol=app.rel_tol,
            abs_tol=app.abs_tol,
            workers=0,
            dyn_profile=dyn,
        )

    def best_of(source: str):
        best, profile = float("inf"), None
        for _ in range(repeats):
            with cache_scope(False):
                t0 = time.perf_counter()
                profile = build(source)
                best = min(best, time.perf_counter() - t0)
        return best, profile

    fi_seconds, fi = best_of("fi")
    model_seconds, model = best_of("model")

    iids = sorted(fi.sdc_prob)
    rho = _spearman(
        [model.sdc_prob[i] for i in iids], [fi.sdc_prob[i] for i in iids]
    )
    return ModelSpeedupReport(
        app=app_name,
        n_instructions=len(iids),
        trials_per_instruction=trials_per_instruction,
        fi_trials=len(iids) * trials_per_instruction,
        fi_seconds=fi_seconds,
        model_seconds=model_seconds,
        speedup=fi_seconds / model_seconds if model_seconds > 0 else float("inf"),
        spearman=rho,
    )
