"""Static error-propagation analysis and model-guided fault injection.

Every SDC probability elsewhere in the repo is bought with fault-injection
trials. This package is the repo's first *static-analysis* layer: it predicts
per-instruction SDC probabilities from program structure alone — a def-use
dataflow framework over the mini-IR (:mod:`repro.analysis.dataflow`), a
per-instruction masking classification (:mod:`repro.analysis.masking`), and
a compositional error-propagation model (:mod:`repro.analysis.model`) in the
spirit of FastFlip's section-level analysis. Per-function **section
summaries** (:mod:`repro.analysis.summaries`) are content-addressed through
:mod:`repro.util.digest` and persisted in :mod:`repro.cache`, so editing one
function only re-analyzes that function.

The model alone never injects a fault; combined with a golden run's dynamic
counts it yields a full cost/benefit profile in milliseconds. The hybrid
predict-then-verify campaign mode (:func:`repro.fi.campaign.
run_model_guided_campaign`) spends FI trials only where the model is
uncertain or near the knapsack cut. :mod:`repro.analysis.validate` measures
how well predictions track injected ground truth (rank correlation, top-k
overlap, hybrid trial savings).
"""

from repro.analysis.dataflow import DefUseGraph, build_def_use, dominator_tree
from repro.analysis.model import (
    PredictedResult,
    density_ranked,
    model_verify_set,
    predict_sdc_probabilities,
    predicted_whole_program_sdc,
)
from repro.analysis.summaries import FunctionSummary, summarize_function
from repro.analysis.validate import ValidationResult, spearman, validate_model

__all__ = [
    "DefUseGraph",
    "build_def_use",
    "dominator_tree",
    "FunctionSummary",
    "summarize_function",
    "PredictedResult",
    "density_ranked",
    "model_verify_set",
    "predict_sdc_probabilities",
    "predicted_whole_program_sdc",
    "ValidationResult",
    "spearman",
    "validate_model",
]
