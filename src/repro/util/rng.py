"""Deterministic, hierarchical random-number streams.

Every stochastic component of the library (input generators, fault-site
sampling, GA operators) draws from an :class:`RngStream` derived from a master
seed plus a textual path, so campaigns are reproducible and independent of
process-pool scheduling order.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence

import numpy as np

__all__ = ["derive_seed", "RngStream"]


def derive_seed(master: int, *path: object) -> int:
    """Derive a 64-bit child seed from ``master`` and a path of labels.

    The derivation is a SHA-256 hash of the master seed and the repr of each
    path element, so any hashable/printable labels (app names, input indices,
    trial indices) produce stable, well-mixed child seeds.
    """
    h = hashlib.sha256()
    h.update(str(int(master)).encode())
    for item in path:
        h.update(b"/")
        h.update(repr(item).encode())
    return int.from_bytes(h.digest()[:8], "little")


class RngStream:
    """A named deterministic RNG combining ``random.Random`` and NumPy.

    Parameters
    ----------
    seed:
        Master seed for this stream.
    path:
        Optional labels mixed into the seed via :func:`derive_seed`.
    """

    __slots__ = ("seed", "py", "np")

    def __init__(self, seed: int, *path: object) -> None:
        self.seed = derive_seed(seed, *path) if path else int(seed)
        self.py = random.Random(self.seed)
        self.np = np.random.default_rng(self.seed)

    def child(self, *path: object) -> "RngStream":
        """Create an independent sub-stream labelled by ``path``."""
        return RngStream(derive_seed(self.seed, *path))

    # Convenience forwarding -------------------------------------------------
    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in ``[lo, hi]`` inclusive."""
        return self.py.randint(lo, hi)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self.py.random()

    def uniform(self, lo: float, hi: float) -> float:
        """Uniform float in ``[lo, hi]``."""
        return self.py.uniform(lo, hi)

    def choice(self, seq: Sequence):
        """Uniform choice from a non-empty sequence."""
        return self.py.choice(seq)

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self.py.shuffle(seq)

    def sample(self, seq: Sequence, k: int) -> list:
        """Sample ``k`` distinct elements."""
        return self.py.sample(seq, k)

    def gauss(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        """Gaussian variate."""
        return self.py.gauss(mu, sigma)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(seed={self.seed})"
