"""Wall-clock accounting for the MINPSID pipeline (Fig. 8 breakdown)."""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["Stopwatch"]


class Stopwatch:
    """Accumulates wall-clock time into named phases.

    Used by the MINPSID pipeline to reproduce the Fig. 8 execution-time
    breakdown (per-instruction FI on the reference input, FI for incubative
    identification, input-search engine, and everything else).
    """

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str):
        """Context manager accumulating the elapsed time under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.totals[name] = self.totals.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def total(self) -> float:
        """Sum of all phase times."""
        return sum(self.totals.values())

    def fractions(self) -> dict[str, float]:
        """Per-phase fraction of the total (empty dict if nothing recorded)."""
        t = self.total()
        if t <= 0:
            return {}
        return {k: v / t for k, v in self.totals.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v:.3f}s" for k, v in self.totals.items())
        return f"Stopwatch({parts})"
