"""Compatibility shim — timing moved to :mod:`repro.obs.timers`.

The original ``Stopwatch`` accumulated *inclusive* time, which double-counted
nested or re-entered phases; :class:`repro.obs.timers.PhaseTimer` defines the
semantics as exclusive time (charged to the innermost active phase). This
module keeps the historical import path alive.
"""

from __future__ import annotations

from repro.obs.timers import PhaseTimer, Stopwatch

__all__ = ["Stopwatch", "PhaseTimer"]
