"""Process-pool fan-out for fault-injection campaigns.

The paper parallelizes all FIs over a 4-node/40-core farm; we provide the
single-node equivalent. Work items must be picklable and the worker function a
module-level callable. Results are returned in submission order regardless of
completion order, so seeded campaigns are bit-reproducible whether run serially
or in parallel.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "default_workers"]


def default_workers() -> int:
    """Default worker count: leave two cores for the orchestrator."""
    return max(1, (os.cpu_count() or 2) - 2)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    *,
    workers: int | None = None,
    chunksize: int = 1,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally across processes.

    ``workers=0`` or ``workers=1`` (or a single item) runs serially in-process,
    which is what the test suite uses; larger values fan out with
    :class:`~concurrent.futures.ProcessPoolExecutor`. Order of results always
    matches the order of ``items``.
    """
    items = list(items)
    if workers is None:
        workers = 0  # serial by default: predictable for tests and small runs
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items, chunksize=max(1, chunksize)))
