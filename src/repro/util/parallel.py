"""Process-pool fan-out for fault-injection campaigns.

The paper parallelizes all FIs over a 4-node/40-core farm; we provide the
single-node equivalent. Work items must be picklable and the worker function a
module-level callable. Results are returned in submission order regardless of
completion order, so seeded campaigns are bit-reproducible whether run serially
or in parallel.

The pooled path is executed by the supervisor in
:mod:`repro.util.supervisor`: worker crashes, hangs, and exceptions are
retried with backoff and a broken pool is respawned (degrading to serial
execution as the last resort), so one bad worker no longer aborts an
hours-long campaign. The supervision knobs (``max_retries``,
``task_timeout``) default to the ``REPRO_MAX_RETRIES`` /
``REPRO_TASK_TIMEOUT`` environment, and the deterministic ``REPRO_CHAOS``
hook can inject harness faults for testing the recovery paths.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Sequence, TypeVar

from repro.util.supervisor import (
    SupervisorConfig,
    resolve_config,
    supervised_map,
)

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "default_workers", "resolve_workers"]

#: Opt-in environment override consulted when ``workers=None``:
#: unset/empty -> serial, ``auto`` -> :func:`default_workers`, else an int.
WORKERS_ENV = "REPRO_WORKERS"


def default_workers() -> int:
    """Default worker count: leave two cores for the orchestrator."""
    return max(1, (os.cpu_count() or 2) - 2)


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker request to a concrete count.

    An explicit integer wins. ``None`` defers to the ``REPRO_WORKERS``
    environment variable — ``auto`` picks :func:`default_workers`, a number
    is taken literally, and anything unset/empty falls back to 0 (serial),
    so campaigns stay predictable unless the user opts in. An *unparsable*
    value also falls back to serial, but loudly: a warning goes through the
    ``repro`` logger so a misconfigured run is visible, not silently slow.
    """
    if workers is not None:
        return max(0, workers)
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 0
    if raw.lower() == "auto":
        return default_workers()
    try:
        return max(0, int(raw))
    except ValueError:
        from repro.obs.log import get_logger

        get_logger("util.parallel").warning(
            "unparsable %s=%r: expected an integer or 'auto'; "
            "falling back to serial execution",
            WORKERS_ENV, raw,
        )
        return 0


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    *,
    workers: int | None = None,
    chunksize: int | None = None,
    initializer: Callable | None = None,
    initargs: tuple = (),
    on_result: Callable[[R], None] | None = None,
    max_retries: int | None = None,
    task_timeout: float | None = None,
    supervisor: SupervisorConfig | None = None,
    pool_factory: Callable | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally across supervised processes.

    ``workers=None`` consults ``REPRO_WORKERS`` via :func:`resolve_workers`;
    0/1 workers (or a single item) runs serially in-process, which is what
    the test suite uses. ``chunksize=None`` picks ~4 chunks per worker so
    callers don't inherit the pathological pool default of 1 item per IPC
    round-trip. ``initializer(*initargs)`` runs once per worker process
    (and once in-process on the serial path) — campaign workers use it to
    seed their per-process program/checkpoint caches. ``on_result`` is
    invoked in the parent, in submission order, as each result becomes
    available — the telemetry layer uses it to stream progress and merge
    worker metric deltas while later items are still running. Order of
    results always matches the order of ``items``.

    The pooled path is self-healing (see :mod:`repro.util.supervisor`):
    ``max_retries`` bounds per-chunk re-submissions and ``task_timeout``
    sets the hung-worker deadline in seconds; both default to their
    environment knobs. An explicit ``supervisor`` config overrides both.

    ``pool_factory`` (see :func:`repro.util.supervisor.supervised_map`)
    replaces the process pool with another executor — the campaign fabric
    passes its transport-backed pool here. With a factory set, dispatch
    always goes through the supervisor so the chosen transport is never
    silently bypassed by the serial shortcut.
    """
    items = list(items)
    workers = resolve_workers(workers)
    if pool_factory is None and (workers <= 1 or len(items) <= 1):
        if initializer is not None:
            initializer(*initargs)
        out: list[R] = []
        for item in items:
            r = fn(item)
            out.append(r)
            if on_result is not None:
                on_result(r)
        return out
    config = supervisor if supervisor is not None else resolve_config(
        max_retries=max_retries, task_timeout=task_timeout
    )
    return supervised_map(
        fn,
        items,
        workers=workers,
        chunksize=chunksize,
        initializer=initializer,
        initargs=initargs,
        on_result=on_result,
        config=config,
        pool_factory=pool_factory,
    )
