"""Minimal ASCII table / candlestick rendering used by the benchmark harness
to print the same rows and series the paper's tables and figures report."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_percent", "render_candlestick_row"]


def format_percent(x: float, digits: int = 2) -> str:
    """Format a fraction as a percentage string, e.g. ``0.5 -> '50.00%'``."""
    return f"{100.0 * x:.{digits}f}%"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render a left-aligned ASCII table with a header separator."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_candlestick_row(
    label: str,
    lo: float,
    q1: float,
    med: float,
    q3: float,
    hi: float,
    expected: float | None = None,
    width: int = 40,
) -> str:
    """Render one text candlestick over [0, 1] — the unit of Figs. 2/6/9.

    ``-`` spans whisker range, ``#`` spans the interquartile box, ``|`` marks
    the median and ``E`` the technique's expected coverage.
    """
    def col(x: float) -> int:
        return min(width - 1, max(0, int(round(x * (width - 1)))))

    canvas = [" "] * width
    for i in range(col(lo), col(hi) + 1):
        canvas[i] = "-"
    for i in range(col(q1), col(q3) + 1):
        canvas[i] = "#"
    canvas[col(med)] = "|"
    if expected is not None:
        canvas[col(expected)] = "E"
    return f"{label:<16} [{''.join(canvas)}] min={lo:.3f} med={med:.3f} max={hi:.3f}"
