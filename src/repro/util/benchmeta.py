"""Shared envelope for ``BENCH_*.json`` perf-trajectory records.

Every perf bench (``benchmarks/test_perf_*.py`` and the standalone
``scripts/bench_*.py``) persists a JSON record so throughput trends are
visible across PRs. Raw numbers from different machines are not comparable,
so each record wraps its payload with the host it ran on (python version,
cpu count, platform) and — ReFrame-style — the *reference bands* its
headline keys are expected to stay inside. ``repro obs report`` reads the
records back and flags any key outside its declared band, which turns a
directory of bench artifacts into a one-glance perf dashboard.

A reference is ``[value, lower, upper]``: the expected value plus relative
tolerances (``lower``/``upper`` are fractions; ``None`` leaves that side
unbounded). ``speedup: [20, -0.25, None]`` reads "expected ~20, flag below
15, never flag above" — the exact convention ReFrame uses for performance
references. Keys are dotted paths into ``data`` (``needle.speedup``).

Trend history
-------------
Snapshots alone cannot distinguish "slow today" from "getting slower". When
``REPRO_BENCH_HISTORY`` names a directory, :func:`write_bench` additionally
*appends* the record — keyed by git sha and timestamp — to
``{history}/{name}.jsonl``, building the append-only series that ``repro obs
trend`` renders as sparklines and checks for regressions (see
:mod:`repro.obs.trend`).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path

__all__ = [
    "BENCH_HISTORY_ENV",
    "host_metadata",
    "bench_record",
    "reference_status",
    "git_sha",
    "history_dir",
    "append_history",
    "write_bench",
]

#: Environment variable naming the append-only bench-history directory.
BENCH_HISTORY_ENV = "REPRO_BENCH_HISTORY"


def host_metadata() -> dict:
    """The machine context a bench number is only meaningful within."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def bench_record(data: dict, references: dict | None = None) -> dict:
    """Wrap a bench payload in the shared BENCH_*.json envelope."""
    rec: dict = {"host": host_metadata(), "data": data}
    if references:
        rec["references"] = references
    return rec


def _lookup(data, path: str):
    """Resolve a dotted path into nested dicts; None when absent."""
    node = data
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def reference_status(record: dict) -> list[tuple]:
    """Check a record's measured keys against its declared bands.

    Returns ``(key, measured, reference, lo_bound, hi_bound, ok)`` rows —
    one per declared reference, in declaration order. Malformed entries
    (missing key, non-numeric value, bad band spec) read as failing rows
    with ``measured=None`` rather than raising: the report must render
    whatever artifacts exist.
    """
    refs = record.get("references")
    data = record.get("data")
    if not isinstance(refs, dict) or not isinstance(data, dict):
        return []
    rows = []
    for key, spec in refs.items():
        try:
            ref, lower, upper = spec
            ref = float(ref)
            lo = None if lower is None else ref * (1.0 + float(lower))
            hi = None if upper is None else ref * (1.0 + float(upper))
        except (TypeError, ValueError):
            rows.append((key, None, None, None, None, False))
            continue
        v = _lookup(data, key)
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            rows.append((key, None, ref, lo, hi, False))
            continue
        ok = (lo is None or v >= lo) and (hi is None or v <= hi)
        rows.append((key, float(v), ref, lo, hi, ok))
    return rows


# ---------------------------------------------------------------------------
# Append-only trend history
# ---------------------------------------------------------------------------


def git_sha(repo_dir: str | Path | None = None) -> str:
    """The short git sha of the working tree, or ``"unknown"`` outside one."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_dir, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def history_dir() -> Path | None:
    """The configured bench-history directory, or ``None`` when tracking
    is off (the :data:`BENCH_HISTORY_ENV` variable is unset or empty)."""
    raw = os.environ.get(BENCH_HISTORY_ENV, "").strip()
    return Path(raw) if raw else None


def append_history(
    name: str,
    record: dict,
    directory: str | Path | None = None,
    *,
    sha: str | None = None,
    ts: float | None = None,
) -> Path | None:
    """Append one bench record to the history series ``{dir}/{name}.jsonl``.

    Each line is a self-contained entry ``{"name", "sha", "ts", "record"}``;
    appending (never rewriting) keeps the series safe under concurrent bench
    runs and trivially mergeable across machines. Returns the series path,
    or ``None`` when no directory is configured.
    """
    directory = Path(directory) if directory is not None else history_dir()
    if directory is None:
        return None
    directory.mkdir(parents=True, exist_ok=True)
    entry = {
        "name": name,
        "sha": sha if sha is not None else git_sha(),
        "ts": ts if ts is not None else time.time(),
        "record": record,
    }
    path = directory / f"{name}.jsonl"
    with path.open("a") as f:
        f.write(json.dumps(entry, separators=(",", ":")) + "\n")
    return path


def write_bench(name: str, record: dict, out_dir: str | Path) -> Path:
    """Persist one bench record: the ``BENCH_{name}.json`` snapshot plus a
    history append when :data:`BENCH_HISTORY_ENV` is configured.

    The single entry point every bench site uses, so pointing the env var at
    a directory is all it takes to start accumulating trend series.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    append_history(name, record)
    return path
