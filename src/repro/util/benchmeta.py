"""Shared envelope for ``BENCH_*.json`` perf-trajectory records.

Every perf bench (``benchmarks/test_perf_*.py`` and the standalone
``scripts/bench_*.py``) persists a JSON record so throughput trends are
visible across PRs. Raw numbers from different machines are not comparable,
so each record wraps its payload with the host it ran on (python version,
cpu count, platform) and — ReFrame-style — the *reference bands* its
headline keys are expected to stay inside. ``repro obs report`` reads the
records back and flags any key outside its declared band, which turns a
directory of bench artifacts into a one-glance perf dashboard.

A reference is ``[value, lower, upper]``: the expected value plus relative
tolerances (``lower``/``upper`` are fractions; ``None`` leaves that side
unbounded). ``speedup: [20, -0.25, None]`` reads "expected ~20, flag below
15, never flag above" — the exact convention ReFrame uses for performance
references. Keys are dotted paths into ``data`` (``needle.speedup``).
"""

from __future__ import annotations

import os
import platform

__all__ = ["host_metadata", "bench_record", "reference_status"]


def host_metadata() -> dict:
    """The machine context a bench number is only meaningful within."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def bench_record(data: dict, references: dict | None = None) -> dict:
    """Wrap a bench payload in the shared BENCH_*.json envelope."""
    rec: dict = {"host": host_metadata(), "data": data}
    if references:
        rec["references"] = references
    return rec


def _lookup(data, path: str):
    """Resolve a dotted path into nested dicts; None when absent."""
    node = data
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def reference_status(record: dict) -> list[tuple]:
    """Check a record's measured keys against its declared bands.

    Returns ``(key, measured, reference, lo_bound, hi_bound, ok)`` rows —
    one per declared reference, in declaration order. Malformed entries
    (missing key, non-numeric value, bad band spec) read as failing rows
    with ``measured=None`` rather than raising: the report must render
    whatever artifacts exist.
    """
    refs = record.get("references")
    data = record.get("data")
    if not isinstance(refs, dict) or not isinstance(data, dict):
        return []
    rows = []
    for key, spec in refs.items():
        try:
            ref, lower, upper = spec
            ref = float(ref)
            lo = None if lower is None else ref * (1.0 + float(lower))
            hi = None if upper is None else ref * (1.0 + float(upper))
        except (TypeError, ValueError):
            rows.append((key, None, None, None, None, False))
            continue
        v = _lookup(data, key)
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            rows.append((key, None, ref, lo, hi, False))
            continue
        ok = (lo is None or v >= lo) and (hi is None or v <= hi)
        rows.append((key, float(v), ref, lo, hi, ok))
    return rows
