"""One health taxonomy for defective hosts and flaky infrastructure.

The fleet simulator (:mod:`repro.fleet`) scores simulated hosts from SDC
evidence, and the dispatch fabric (:mod:`repro.fabric.harness`) watches
real adapters misbehave — disconnects, failed chunks, handshake refusals.
Before this module each kept its own ad-hoc bookkeeping; now both charge
the same evidence kinds into the same :class:`HealthTracker`, so "a host
whose duplication checks keep tripping" and "an adapter that keeps
dropping mid-chunk" move through one HEALTHY → SUSPECT → QUARANTINED
lifecycle with one vocabulary in reports and events.

Evidence kinds and their default weights:

==============  ======  ====================================================
Kind            Weight  Meaning
==============  ======  ====================================================
``detected``    1       A duplication check tripped (attributable, mild)
``crash``       1       A job/chunk crashed on the entity
``retry``       1       Work failed and was retried elsewhere
``disconnect``  2       The entity dropped mid-work (fabric adapters)
``test_fail``   3       A directed in-field test caught the defect
``sdc``         3       A silent corruption was traced back to the entity
==============  ======  ====================================================

Scores only grow through :meth:`HealthTracker.charge`; a clean directed
test (:meth:`clear_pass`) counts toward *readmission* while quarantined
but never erases evidence — sticky defects are sticky, and a marginal
part that passes one test is still the part that failed three.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

__all__ = [
    "EVIDENCE_WEIGHTS",
    "HEALTHY",
    "SUSPECT",
    "QUARANTINED",
    "HealthPolicy",
    "HealthRecord",
    "HealthTracker",
]

#: Default evidence weights (see the module docstring table).
EVIDENCE_WEIGHTS = {
    "detected": 1,
    "crash": 1,
    "retry": 1,
    "disconnect": 2,
    "test_fail": 3,
    "sdc": 3,
}

HEALTHY = "healthy"
SUSPECT = "suspect"
QUARANTINED = "quarantined"


@dataclass(frozen=True)
class HealthPolicy:
    """Quarantine/readmission thresholds shared by fleet and fabric.

    ``quarantine_at`` is the evidence score at which an entity is pulled
    from service; any nonzero score below it reads as SUSPECT. With
    ``readmit_after`` > 0, that many *consecutive* clean directed tests
    while quarantined readmit the entity (its score resets to the suspect
    band, not to zero — history is kept); 0 means quarantine is final.
    """

    quarantine_at: int = 3
    readmit_after: int = 0

    def __post_init__(self) -> None:
        if self.quarantine_at < 1:
            raise ConfigError(
                f"quarantine_at must be >= 1, got {self.quarantine_at}"
            )
        if self.readmit_after < 0:
            raise ConfigError(
                f"readmit_after must be >= 0, got {self.readmit_after}"
            )


@dataclass
class HealthRecord:
    """Evidence ledger of one entity (a host id, an adapter label)."""

    score: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)
    quarantined: bool = False
    clean_streak: int = 0
    readmissions: int = 0

    def status(self, policy: HealthPolicy) -> str:
        if self.quarantined:
            return QUARANTINED
        if self.score > 0:
            return SUSPECT
        return HEALTHY


class HealthTracker:
    """Evidence accumulation + the quarantine/readmission state machine."""

    def __init__(
        self,
        policy: HealthPolicy | None = None,
        weights: dict[str, int] | None = None,
    ) -> None:
        self.policy = policy or HealthPolicy()
        self.weights = dict(EVIDENCE_WEIGHTS)
        if weights:
            self.weights.update(weights)
        self.records: dict[object, HealthRecord] = {}

    def record(self, entity) -> HealthRecord:
        rec = self.records.get(entity)
        if rec is None:
            rec = self.records[entity] = HealthRecord()
        return rec

    def charge(self, entity, kind: str, weight: int | None = None) -> str:
        """Charge one piece of evidence; returns the resulting status.

        ``kind`` outside the weight table charges weight 1 (unknown
        evidence is still evidence) unless ``weight`` is given explicitly.
        Fresh evidence breaks any clean-test streak.
        """
        rec = self.record(entity)
        w = weight if weight is not None else self.weights.get(kind, 1)
        rec.score += w
        rec.by_kind[kind] = rec.by_kind.get(kind, 0) + 1
        rec.clean_streak = 0
        if not rec.quarantined and rec.score >= self.policy.quarantine_at:
            rec.quarantined = True
        return rec.status(self.policy)

    def clear_pass(self, entity) -> bool:
        """One clean directed test; returns True when it readmits.

        Only quarantined entities accumulate a streak — a SUSPECT passing
        tests stays suspect (its evidence is real), which keeps fleet and
        fabric behaviour conservative by default.
        """
        rec = self.record(entity)
        if not rec.quarantined:
            return False
        if self.policy.readmit_after <= 0:
            return False
        rec.clean_streak += 1
        if rec.clean_streak >= self.policy.readmit_after:
            self._readmit(rec)
            return True
        return False

    def force_readmit(self, entity) -> None:
        """Capacity-pressure override: return the entity to service.

        The graceful-degradation path — quarantine shrank capacity below
        the floor and the scheduler needs machines back, evidence or not.
        """
        rec = self.record(entity)
        if rec.quarantined:
            self._readmit(rec)

    def _readmit(self, rec: HealthRecord) -> None:
        rec.quarantined = False
        rec.clean_streak = 0
        rec.readmissions += 1
        # Re-enter service in the suspect band: one more piece of evidence
        # away from quarantine, so a recurring defect is re-caught fast.
        rec.score = max(0, self.policy.quarantine_at - 1)

    def status(self, entity) -> str:
        rec = self.records.get(entity)
        if rec is None:
            return HEALTHY
        return rec.status(self.policy)

    def quarantined(self) -> list:
        """Entities currently out of service, in insertion order."""
        return [e for e, r in self.records.items() if r.quarantined]

    def active(self, entities) -> list:
        """Filter ``entities`` down to those not quarantined."""
        return [e for e in entities if self.status(e) != QUARANTINED]
