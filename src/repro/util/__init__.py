"""Shared utilities: bit manipulation, seeded RNG streams, canonical
hashing, supervised parallel map, ASCII table rendering and timing
helpers."""

from repro.util.digest import canonical_bytes, stable_digest
from repro.util.bitops import (
    bit_width,
    flip_bit_float32,
    flip_bit_float64,
    flip_bit_int,
    float32_from_bits,
    float32_to_bits,
    float64_from_bits,
    float64_to_bits,
    sign_extend,
    to_signed,
    to_unsigned,
)
from repro.util.rng import RngStream, derive_seed
from repro.util.parallel import parallel_map
from repro.util.supervisor import SupervisorConfig, parse_chaos, supervised_map
from repro.util.tables import format_table
from repro.util.timing import Stopwatch

__all__ = [
    "bit_width",
    "flip_bit_float32",
    "flip_bit_float64",
    "flip_bit_int",
    "float32_from_bits",
    "float32_to_bits",
    "float64_from_bits",
    "float64_to_bits",
    "sign_extend",
    "to_signed",
    "to_unsigned",
    "RngStream",
    "canonical_bytes",
    "derive_seed",
    "parallel_map",
    "supervised_map",
    "SupervisorConfig",
    "parse_chaos",
    "stable_digest",
    "format_table",
    "Stopwatch",
]
