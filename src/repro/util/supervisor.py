"""Supervised process-pool execution: self-healing fan-out for campaigns.

:func:`repro.util.parallel.parallel_map` used to drive a bare ``pool.map``:
one OOM-killed worker raised ``BrokenProcessPool`` and aborted an hours-long
campaign, and a hung worker stalled the run forever. This module replaces
that pooled path with a *supervisor*: futures-based per-chunk dispatch with

* **bounded retries with exponential backoff** — a chunk whose worker raised
  is re-submitted up to ``max_retries`` times before a typed
  :class:`~repro.errors.HarnessError` surfaces;
* **pool recovery** — a broken pool is respawned (same worker count, same
  initializer) and only unfinished chunks are re-submitted;
* **hang detection** — with ``task_timeout`` set, an in-flight chunk past its
  wall-clock deadline has its workers killed and is retried on a fresh pool;
* **graceful degradation** — after ``max_pool_respawns`` crash-respawns the
  supervisor stops fighting the infrastructure and finishes the remaining
  chunks serially in-process instead of crashing the campaign.

Results are delivered in submission order regardless of completion order and
work functions are deterministic, so a supervised run — retries, respawns,
degradation and all — returns results **bit-identical** to a serial run.

The ``REPRO_CHAOS`` hook (:func:`parse_chaos`) injects worker crashes
(``os._exit``), hangs, and exceptions *into the harness itself* —
deterministic fault injection aimed at the fault injector — which is how the
test suite and the CI chaos job prove the recovery paths work. Chaos fires
only inside pool workers, never in the parent or on the serial path.

Host-side failures are reported through ``repro.obs`` as ``harness.*``
events/counters (surfaced by ``repro obs report``). These counters are
infrastructure-dependent and deliberately excluded from the deterministic
counter guarantee: a healthy run emits none of them.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import (
    ChaosError,
    ConfigError,
    PoolDegraded,
    WorkerCrash,
    WorkerError,
    WorkerTimeout,
)

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "SupervisorConfig",
    "ChaosFault",
    "parse_chaos",
    "set_chaos_identity",
    "chaos_identity",
    "resolve_config",
    "supervised_map",
    "MAX_RETRIES_ENV",
    "TASK_TIMEOUT_ENV",
    "CHAOS_ENV",
    "CHAOS_IDENTITY_ENV",
]

#: Environment default for :attr:`SupervisorConfig.max_retries`.
MAX_RETRIES_ENV = "REPRO_MAX_RETRIES"
#: Environment default for :attr:`SupervisorConfig.task_timeout` (seconds).
TASK_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"
#: Deterministic harness-fault injection spec, e.g. ``crash@1,hang@3#0``.
CHAOS_ENV = "REPRO_CHAOS"

#: An injected hang sleeps this long — far past any sane task deadline, so
#: the supervisor's kill path (not the sleep expiring) ends it.
_CHAOS_HANG_SECONDS = 3600.0
#: Exit status of an injected crash (distinctive in worker-death logs).
_CHAOS_EXIT_CODE = 113


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SupervisorConfig:
    """Retry/timeout policy of one supervised map."""

    #: Failed chunk re-submissions allowed before a typed error surfaces.
    max_retries: int = 2
    #: Per-chunk wall-clock deadline in seconds (None = no hang detection).
    task_timeout: float | None = None
    #: First retry backoff; doubles per attempt up to :attr:`backoff_max`.
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    #: Pool crash-respawns tolerated before degrading to serial execution.
    max_pool_respawns: int = 3
    #: Degrade to in-process serial execution instead of raising
    #: :class:`~repro.errors.PoolDegraded` when the respawn budget runs out.
    serial_fallback: bool = True
    #: Parsed chaos faults shipped to workers (see :func:`parse_chaos`).
    chaos: tuple["ChaosFault", ...] = ()


def _env_int(name: str) -> int | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        _warn_env(name, raw)
        return None


def _env_float(name: str) -> float | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        _warn_env(name, raw)
        return None


def _warn_env(name: str, raw: str) -> None:
    from repro.obs.log import get_logger

    get_logger("util.supervisor").warning(
        "unparsable %s=%r: ignoring it and using the default", name, raw
    )


def resolve_config(
    max_retries: int | None = None,
    task_timeout: float | None = None,
    chaos_spec: str | None = None,
) -> SupervisorConfig:
    """Build a config: explicit arguments beat environment beat defaults.

    ``REPRO_MAX_RETRIES`` / ``REPRO_TASK_TIMEOUT`` supply ambient defaults
    (a warning is logged for unparsable values); ``REPRO_CHAOS`` supplies
    the chaos spec when ``chaos_spec`` is ``None``. A ``task_timeout`` of
    0 or less disables hang detection.
    """
    cfg = SupervisorConfig()
    if max_retries is None:
        max_retries = _env_int(MAX_RETRIES_ENV)
    if max_retries is not None:
        cfg = replace(cfg, max_retries=max(0, int(max_retries)))
    if task_timeout is None:
        task_timeout = _env_float(TASK_TIMEOUT_ENV)
    if task_timeout is not None:
        cfg = replace(
            cfg, task_timeout=float(task_timeout) if task_timeout > 0 else None
        )
    if chaos_spec is None:
        chaos_spec = os.environ.get(CHAOS_ENV, "").strip() or None
    if chaos_spec:
        cfg = replace(cfg, chaos=parse_chaos(chaos_spec))
    return cfg


# ---------------------------------------------------------------------------
# Chaos self-injection (REPRO_CHAOS)
# ---------------------------------------------------------------------------

_CHAOS_KINDS = ("crash", "hang", "exc")


@dataclass(frozen=True)
class ChaosFault:
    """One injected harness fault: ``kind`` hits ``chunk`` on ``attempt``.

    ``attempt=None`` (spec suffix ``#*``) fires on *every* attempt — the way
    to force retry exhaustion; the default (attempt 0) fires once, so the
    retry must succeed. ``chunk=None`` (spec ``kind@*``) matches every
    chunk, and ``target`` restricts the fault to the worker or adapter
    whose chaos identity (:func:`set_chaos_identity`) matches — together
    they express a *sticky bad host*: ``crash@*#*@adapter1`` kills
    ``adapter1`` on every chunk it ever touches, while its peers stay
    healthy. The fleet tests use exactly that to force a persistent
    defective host through the ordinary chaos path.
    """

    kind: str
    chunk: int | None
    attempt: int | None = 0
    target: str | None = None


def parse_chaos(spec: str) -> tuple[ChaosFault, ...]:
    """Parse a ``REPRO_CHAOS`` spec: ``kind@chunk[#attempt|#*][@target]``.

    Comma-separated list. ``chunk`` is an index or ``*`` (every chunk);
    the optional ``@target`` suffix names the worker/adapter the fault is
    pinned to (see :func:`set_chaos_identity`). Examples: ``crash@1``
    (kill the worker running chunk 1, first attempt only),
    ``hang@3#0,exc@5#*`` (hang chunk 3 once; raise in chunk 5 on every
    attempt), ``crash@*#*@adapter1`` (sticky: adapter1 dies on every
    chunk, every attempt). Kinds: ``crash`` (``os._exit``), ``hang``
    (sleep past any deadline), ``exc`` (raise
    :class:`~repro.errors.ChaosError`).
    """
    faults: list[ChaosFault] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            kind, sep, rest = part.partition("@")
            if kind not in _CHAOS_KINDS or not sep:
                raise ValueError
            chunk_s, hsep, att_s = rest.partition("#")
            target = None
            if hsep:
                att_s, tsep, tgt = att_s.partition("@")
            else:
                chunk_s, tsep, tgt = chunk_s.partition("@")
            if tsep:
                if not tgt:
                    raise ValueError
                target = tgt
            chunk = None if chunk_s == "*" else int(chunk_s)
            attempt = 0 if not hsep else (None if att_s == "*" else int(att_s))
        except ValueError:
            raise ConfigError(
                f"bad {CHAOS_ENV} entry {part!r}: expected "
                f"kind@chunk[#attempt|#*][@target] with kind in "
                f"{_CHAOS_KINDS} and chunk an index or '*'"
            ) from None
        faults.append(ChaosFault(kind, chunk, attempt, target))
    return tuple(faults)


#: Environment fallback for the worker/adapter chaos identity, so spawned
#: adapter processes inherit their name without argument plumbing.
CHAOS_IDENTITY_ENV = "REPRO_CHAOS_IDENTITY"

_chaos_identity: str | None = None


def set_chaos_identity(name: str | None) -> None:
    """Name this process for targeted chaos (``@target`` spec suffix).

    Called by fabric adapters (``--name``) and worker initializers; a
    ``None`` clears it back to the :data:`CHAOS_IDENTITY_ENV` fallback.
    """
    global _chaos_identity
    _chaos_identity = name


def chaos_identity() -> str | None:
    """This process's chaos identity, or ``None`` when anonymous."""
    if _chaos_identity is not None:
        return _chaos_identity
    return os.environ.get(CHAOS_IDENTITY_ENV, "").strip() or None


def maybe_chaos(
    faults: Sequence[ChaosFault], chunk: int, attempt: int
) -> None:
    """Worker-side trigger: fire any fault matching (chunk, attempt).

    Called at chunk start, *before* any work item runs, so an injected
    failure never leaves partial results or stale worker-metric residue.
    Targeted faults additionally require this process's
    :func:`chaos_identity` to equal their ``target`` — an anonymous
    process never matches a targeted fault.
    """
    for f in faults:
        if f.chunk is not None and f.chunk != chunk:
            continue
        if f.attempt is not None and f.attempt != attempt:
            continue
        if f.target is not None and f.target != chaos_identity():
            continue
        if f.kind == "crash":
            os._exit(_CHAOS_EXIT_CODE)
        if f.kind == "hang":
            time.sleep(_CHAOS_HANG_SECONDS)
        raise ChaosError(
            f"injected exception in chunk {chunk}, attempt {attempt}"
        )


# ---------------------------------------------------------------------------
# Worker entry
# ---------------------------------------------------------------------------


def _scrub_worker_metrics() -> None:
    """Discard metric residue a previous, aborted attempt left behind.

    Worker metrics are drained into every completed batch's return value, so
    a healthy worker's registry is empty between chunks; anything found at
    chunk start is exactly the partial accounting of an attempt that died
    mid-flight. Dropping it keeps deterministic counters (``vm.steps``,
    ``fi.trials``) identical between failure-free and retried runs. The same
    holds for buffered span records: a chunk that died mid-flight leaves its
    partial span subtree behind, and shipping it with the *retry's* batch
    would double-charge the chunk in the trace — drain it (and reset the
    nesting stack) before any new work runs.
    """
    from repro.obs.core import current

    t = current()
    if t is not None and t.is_worker:
        t.metrics.drain()
        t.drain_spans()
        t._span_stack.clear()


def _run_chunk(payload):
    """Pool-worker entry: apply ``fn`` to one chunk of items, in order."""
    fn, chunk_items, index, attempt, chaos = payload
    _scrub_worker_metrics()
    if chaos:
        maybe_chaos(chaos, index, attempt)
    return [fn(item) for item in chunk_items]


# ---------------------------------------------------------------------------
# Parent-side supervisor
# ---------------------------------------------------------------------------


def _note(
    event: str | None = None,
    fields: dict | None = None,
    counters: dict | None = None,
) -> None:
    """Emit harness telemetry when a session is active (else free)."""
    from repro.obs.core import current

    t = current()
    if t is None:
        return
    for name, n in (counters or {}).items():
        t.count(name, n)
    if event:
        t.emit(event, fields or {})


class _Chunk:
    """Supervisor bookkeeping for one submitted slice of the work list."""

    __slots__ = ("index", "items", "attempts", "result", "done",
                 "ready_at", "deadline", "last_error")

    def __init__(self, index: int, items: list) -> None:
        self.index = index
        self.items = items
        self.attempts = 0          # failures charged so far
        self.result: list | None = None
        self.done = False
        self.ready_at = 0.0        # backoff: not re-submittable before this
        self.deadline: float | None = None
        self.last_error: str | None = None


class _Supervisor:
    def __init__(
        self,
        fn: Callable,
        chunks: list[_Chunk],
        workers: int,
        initializer: Callable | None,
        initargs: tuple,
        on_result: Callable | None,
        config: SupervisorConfig,
        pool_factory: Callable | None = None,
    ) -> None:
        self.fn = fn
        self.chunks = chunks
        self.workers = workers
        self.initializer = initializer
        self.initargs = initargs
        self.on_result = on_result
        self.config = config
        self.pool_factory = pool_factory
        self.pool: ProcessPoolExecutor | None = None
        self.respawns = 0          # crash-triggered respawns (degrade budget)
        self.degraded = False
        self._initialized_in_parent = False
        self._next_emit = 0        # ordered-delivery cursor

    # -- pool lifecycle -------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self.pool is None:
            factory = self.pool_factory or ProcessPoolExecutor
            self.pool = factory(
                max_workers=self.workers,
                initializer=self.initializer,
                initargs=self.initargs,
            )
        return self.pool

    def _kill_pool(self) -> None:
        """Tear the pool down hard — also ends hung or wedged workers."""
        pool, self.pool = self.pool, None
        if pool is None:
            return
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.kill()
            except Exception:
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    # -- ordered delivery -----------------------------------------------
    def _complete(self, chunk: _Chunk) -> None:
        chunk.done = True
        while (self._next_emit < len(self.chunks)
               and self.chunks[self._next_emit].done):
            ready = self.chunks[self._next_emit]
            if self.on_result is not None:
                for r in ready.result:
                    self.on_result(r)
            self._next_emit += 1

    # -- failure accounting ---------------------------------------------
    def _charge(self, chunk: _Chunk, reason: str, error=None) -> None:
        """One failure against ``chunk``; raises when retries are exhausted."""
        chunk.attempts += 1
        chunk.last_error = f"{type(error).__name__}: {error}" if error else reason
        _note(
            "harness.retry",
            {"chunk": chunk.index, "attempt": chunk.attempts,
             "reason": reason},
            counters={"harness.retries": 1},
        )
        if chunk.attempts <= self.config.max_retries:
            delay = min(
                self.config.backoff_max,
                self.config.backoff_base * (2 ** (chunk.attempts - 1)),
            )
            chunk.ready_at = time.monotonic() + delay
            return
        if reason == "crash" and self.config.serial_fallback:
            # A chunk whose worker keeps dying still has the serial escape
            # hatch — degradation, not a raise, is the crash-path endgame.
            self._degrade("worker crashes exhausted retries")
            return
        summary = (
            f"chunk {chunk.index} ({len(chunk.items)} items) failed "
            f"{chunk.attempts} attempt(s); last failure: {chunk.last_error}"
        )
        _note(
            "harness.failed",
            {"chunk": chunk.index, "reason": reason,
             "attempts": chunk.attempts},
            counters={"harness.chunks_failed": 1},
        )
        if reason == "timeout":
            raise WorkerTimeout(
                f"{summary} (deadline {self.config.task_timeout}s)"
            )
        if reason == "crash":
            raise WorkerCrash(summary)
        err = WorkerError(summary)
        if isinstance(error, BaseException):
            raise err from error
        raise err

    def _degrade(self, why: str) -> None:
        if not self.config.serial_fallback:
            raise PoolDegraded(
                f"process pool failed {self.respawns} time(s) and serial "
                f"fallback is disabled ({why})"
            )
        if not self.degraded:
            self.degraded = True
            _note(
                "harness.degraded", {"reason": why},
                counters={"harness.degraded": 1},
            )

    def _pool_break(
        self, inflight: dict, queue: list, reason: str,
        victims: list | None = None,
    ) -> None:
        """Respawn after a broken pool; requeue every unfinished chunk."""
        self._kill_pool()
        self.respawns += 1
        _note(
            "harness.pool_respawn",
            {"respawns": self.respawns, "reason": reason},
            counters={"harness.pool_respawns": 1,
                      "harness.worker_crashes": 1},
        )
        # Any in-flight chunk may be the one that killed its worker; each is
        # charged one attempt (they all must re-run anyway), front-queued to
        # preserve rough submission order.
        affected = list(victims or []) + list(inflight.values())
        for chunk in affected:
            self._charge(chunk, "crash")
        inflight.clear()
        queue[:0] = sorted(affected, key=lambda c: c.index)
        if self.respawns > self.config.max_pool_respawns:
            self._degrade(
                f"pool broke {self.respawns} times "
                f"(budget {self.config.max_pool_respawns})"
            )

    def _expire_deadlines(self, inflight: dict, queue: list) -> None:
        """Kill the pool when any in-flight chunk overran its deadline."""
        now = time.monotonic()
        hung = [c for c in inflight.values()
                if c.deadline is not None and now > c.deadline]
        if not hung:
            return
        self._kill_pool()
        for chunk in hung:
            _note(
                "harness.retry",
                {"chunk": chunk.index, "attempt": chunk.attempts + 1,
                 "reason": "timeout"},
            )
        _note(counters={"harness.worker_timeouts": len(hung),
                        "harness.pool_respawns": 1})
        for chunk in hung:
            chunk.attempts += 1
            chunk.last_error = "deadline exceeded"
            if chunk.attempts > self.config.max_retries:
                _note(
                    "harness.failed",
                    {"chunk": chunk.index, "reason": "timeout",
                     "attempts": chunk.attempts},
                    counters={"harness.chunks_failed": 1},
                )
                raise WorkerTimeout(
                    f"chunk {chunk.index} ({len(chunk.items)} items) hung "
                    f"past its {self.config.task_timeout}s deadline on "
                    f"{chunk.attempts} attempt(s)"
                )
            chunk.ready_at = now + min(
                self.config.backoff_max,
                self.config.backoff_base * (2 ** (chunk.attempts - 1)),
            )
        # Innocent bystanders of the kill are requeued blame-free: their
        # results recompute deterministically, so nothing is lost but time.
        requeue = sorted(inflight.values(), key=lambda c: c.index)
        inflight.clear()
        queue[:0] = requeue

    # -- serial paths ----------------------------------------------------
    def _run_serial(self, chunk: _Chunk) -> None:
        # Chaos is a *worker* fault model: it never fires in the parent, so
        # the degraded path (like the plain serial path) runs fn directly
        # and lets real fn exceptions propagate raw.
        if self.initializer is not None and not self._initialized_in_parent:
            self.initializer(*self.initargs)
            self._initialized_in_parent = True
        chunk.result = [self.fn(item) for item in chunk.items]
        self._complete(chunk)

    # -- main loop -------------------------------------------------------
    def run(self) -> list:
        try:
            self._loop()
        finally:
            pool, self.pool = self.pool, None
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        out: list = []
        for chunk in self.chunks:
            out.extend(chunk.result)
        return out

    def _loop(self) -> None:
        queue: list[_Chunk] = list(self.chunks)
        inflight: dict = {}  # Future -> _Chunk
        while queue or inflight:
            if self.degraded:
                for chunk in sorted(
                    list(inflight.values()) + queue, key=lambda c: c.index
                ):
                    self._run_serial(chunk)
                self._kill_pool()
                return
            now = time.monotonic()
            broke_on_submit = False
            i = 0
            while len(inflight) < self.workers and i < len(queue):
                chunk = queue[i]
                if chunk.ready_at > now:  # still backing off
                    i += 1
                    continue
                queue.pop(i)
                try:
                    fut = self._submit(chunk)
                except BrokenProcessPool:
                    queue.insert(0, chunk)
                    self._pool_break(inflight, queue, "broken on submit")
                    broke_on_submit = True
                    break
                inflight[fut] = chunk
            if broke_on_submit:
                continue
            if not inflight:
                # Everything runnable is backing off; sleep to the earliest.
                soonest = min((c.ready_at for c in queue), default=now)
                time.sleep(max(0.0, min(soonest - now, 0.5)))
                continue
            done, _ = wait(
                set(inflight),
                timeout=self._poll_timeout(inflight, queue),
                return_when=FIRST_COMPLETED,
            )
            victims: list[_Chunk] = []
            for fut in done:
                chunk = inflight.pop(fut)
                try:
                    chunk.result = fut.result()
                except BrokenProcessPool:
                    victims.append(chunk)
                except Exception as e:  # fn raised inside the worker
                    _note(counters={"harness.worker_errors": 1})
                    self._charge(chunk, "error", e)
                    queue.append(chunk)
                else:
                    self._complete(chunk)
            if victims:
                self._pool_break(inflight, queue, "worker died", victims)
                continue
            self._expire_deadlines(inflight, queue)

    def _submit(self, chunk: _Chunk):
        pool = self._ensure_pool()
        # A pool that declines chaos (the in-process fabric adapter, whose
        # ``crash`` kind would os._exit the harness itself) gets chunk
        # payloads with the fault list stripped.
        chaos = (self.config.chaos
                 if getattr(pool, "supports_chaos", True) else ())
        fut = pool.submit(
            _run_chunk,
            (self.fn, chunk.items, chunk.index, chunk.attempts, chaos),
        )
        chunk.deadline = (
            time.monotonic() + self.config.task_timeout
            if self.config.task_timeout is not None else None
        )
        return fut

    def _poll_timeout(self, inflight: dict, queue: list) -> float | None:
        """Wake for the earliest deadline or backoff expiry (None = block)."""
        now = time.monotonic()
        marks = [c.deadline for c in inflight.values()
                 if c.deadline is not None]
        marks += [c.ready_at for c in queue if c.ready_at > now]
        if not marks:
            return None
        return max(0.01, min(marks) - now)


def supervised_map(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    *,
    workers: int,
    chunksize: int | None = None,
    initializer: Callable | None = None,
    initargs: tuple = (),
    on_result: Callable[[R], None] | None = None,
    config: SupervisorConfig | None = None,
    pool_factory: Callable | None = None,
) -> list[R]:
    """Map ``fn`` over ``items`` across a self-healing process pool.

    The supervised equivalent of the pooled path of
    :func:`repro.util.parallel.parallel_map` (same contract: submission-order
    results, ``on_result`` streamed in order, per-worker ``initializer``),
    plus the recovery behaviour described in the module docstring.
    ``chunksize`` groups items into per-future chunks (default ~4 chunks per
    worker); ``config`` defaults to :func:`resolve_config`'s environment
    resolution. ``workers <= 1`` or a single item runs serially in-process —
    chaos and supervision never apply there.

    ``pool_factory`` swaps the executor: any callable with the
    ``ProcessPoolExecutor(max_workers=, initializer=, initargs=)``
    signature returning an executor-shaped pool (``submit``/``shutdown``/
    killable ``_processes``) — this is how the fabric of
    :mod:`repro.fabric.harness` reuses the supervisor as its scheduler.
    With a factory set, dispatch always goes through the pool (the serial
    shortcut would silently bypass the chosen transport), using at least
    one worker slot.
    """
    items = list(items)
    if config is None:
        config = resolve_config()
    if pool_factory is None and (workers <= 1 or len(items) <= 1):
        if initializer is not None:
            initializer(*initargs)
        out: list[R] = []
        for item in items:
            r = fn(item)
            out.append(r)
            if on_result is not None:
                on_result(r)
        return out
    workers = max(1, workers)
    if chunksize is None:
        chunksize = max(1, -(-len(items) // (workers * 4)))
    chunksize = max(1, chunksize)
    chunks = [
        _Chunk(k, items[off:off + chunksize])
        for k, off in enumerate(range(0, len(items), chunksize))
    ]
    sup = _Supervisor(
        fn, chunks, workers, initializer, initargs, on_result, config,
        pool_factory=pool_factory,
    )
    return sup.run()
