"""Canonical, bit-exact hashing of nested Python values.

The campaign cache (:mod:`repro.cache`) keys results by a digest of
everything the outcome is a pure function of: canonical IR text, input
payload, fault-model config, and trial plan. Those payloads are nested
Python scalars and containers, so the digest must be *canonical* (dict
order never matters) and *bit-exact* (``-0.0 != 0.0``, ``1 != 1.0``,
``NaN`` payloads preserved) — exactly the equality the interpreter and the
outcome classifier use. ``repr``-based hashing fails both bars; this module
encodes values into an unambiguous, type-tagged byte stream instead.

Encoding rules (stable across processes and Python versions):

* every value is tagged by a single type byte, so values of different types
  never collide (``1`` vs ``1.0`` vs ``True`` vs ``"1"``);
* floats encode as their IEEE-754 big-endian bit pattern;
* ints encode as decimal ASCII (arbitrary precision, sign included);
* strings encode as UTF-8, bytes verbatim, both length-prefixed;
* lists and tuples encode identically (element count + elements) — they are
  interchangeable payload containers;
* dict items are sorted by the encoding of their keys, so insertion order
  is canonicalized away;
* :class:`enum.Enum` members encode as (class name, value).
"""

from __future__ import annotations

import enum
import hashlib
import struct

__all__ = ["canonical_bytes", "stable_digest"]


def _encode(value, out: bytearray) -> None:
    # NOTE: bool before int — bool is an int subclass but must not collide.
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif isinstance(value, enum.Enum):
        out += b"E"
        _encode(type(value).__name__, out)
        _encode(value.value, out)
    elif isinstance(value, int):
        raw = str(value).encode("ascii")
        out += b"i"
        out += struct.pack(">I", len(raw))
        out += raw
    elif isinstance(value, float):
        out += b"f"
        out += struct.pack(">d", value)  # raw bit pattern: -0.0, NaN exact
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += b"s"
        out += struct.pack(">I", len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray)):
        out += b"b"
        out += struct.pack(">I", len(value))
        out += bytes(value)
    elif isinstance(value, (list, tuple)):
        out += b"l"
        out += struct.pack(">I", len(value))
        for item in value:
            _encode(item, out)
    elif isinstance(value, dict):
        items = []
        for k, v in value.items():
            kb = bytearray()
            _encode(k, kb)
            items.append((bytes(kb), v))
        items.sort(key=lambda kv: kv[0])
        out += b"d"
        out += struct.pack(">I", len(items))
        for kb, v in items:
            out += kb
            _encode(v, out)
    else:
        raise TypeError(
            f"canonical_bytes: unsupported type {type(value).__name__!r}"
        )


def canonical_bytes(value) -> bytes:
    """Deterministic, type-tagged byte encoding of a nested payload."""
    out = bytearray()
    _encode(value, out)
    return bytes(out)


def stable_digest(value) -> str:
    """Hex SHA-256 of :func:`canonical_bytes` — the cache-key primitive."""
    return hashlib.sha256(canonical_bytes(value)).hexdigest()
