"""Bit-level helpers for the fault model.

Integers are carried by the VM as *unsigned* Python ints masked to their
declared width (two's-complement encoding); floats as Python floats. The fault
injector flips one bit of the IEEE-754/two's-complement encoding, exactly as
LLFI does on the return value of an instruction.
"""

from __future__ import annotations

import math
import struct

__all__ = [
    "bit_width",
    "to_signed",
    "to_unsigned",
    "sign_extend",
    "flip_bit_int",
    "float64_to_bits",
    "float64_from_bits",
    "float32_to_bits",
    "float32_from_bits",
    "flip_bit_float64",
    "flip_bit_float32",
    "FLIP_INT",
    "FLIP_F64",
    "FLIP_F32",
    "flip_value",
]

_MASKS = {w: (1 << w) - 1 for w in (1, 8, 16, 32, 64)}


def bit_width(mask: int) -> int:
    """Return the width in bits of an all-ones mask (``0xFF`` -> 8)."""
    return mask.bit_length()


def to_signed(value: int, width: int) -> int:
    """Interpret an unsigned ``width``-bit pattern as two's-complement."""
    sign = 1 << (width - 1)
    return (value & (sign - 1)) - (value & sign)


def to_unsigned(value: int, width: int) -> int:
    """Truncate a Python int to an unsigned ``width``-bit pattern."""
    return value & ((1 << width) - 1)


def sign_extend(value: int, from_width: int, to_width: int) -> int:
    """Sign-extend an unsigned ``from_width``-bit pattern to ``to_width`` bits."""
    return to_unsigned(to_signed(value, from_width), to_width)


def flip_bit_int(value: int, bit: int, width: int) -> int:
    """Flip bit ``bit`` (0 = LSB) of a ``width``-bit unsigned pattern."""
    if not 0 <= bit < width:
        raise ValueError(f"bit {bit} out of range for width {width}")
    return (value ^ (1 << bit)) & ((1 << width) - 1)


def float64_to_bits(x: float) -> int:
    """IEEE-754 binary64 encoding of ``x`` as an unsigned 64-bit int."""
    return struct.unpack("<Q", struct.pack("<d", x))[0]


def float64_from_bits(bits: int) -> float:
    """Decode an unsigned 64-bit pattern as IEEE-754 binary64."""
    return struct.unpack("<d", struct.pack("<Q", bits & _MASKS[64]))[0]


def float32_to_bits(x: float) -> int:
    """IEEE-754 binary32 encoding of ``x`` (rounded to f32) as a 32-bit int."""
    return struct.unpack("<I", struct.pack("<f", x))[0]


def float32_from_bits(bits: int) -> float:
    """Decode an unsigned 32-bit pattern as IEEE-754 binary32."""
    return struct.unpack("<f", struct.pack("<I", bits & _MASKS[32]))[0]


def flip_bit_float64(x: float, bit: int) -> float:
    """Flip one bit of the binary64 encoding of ``x``."""
    if not 0 <= bit < 64:
        raise ValueError(f"bit {bit} out of range for f64")
    return float64_from_bits(float64_to_bits(x) ^ (1 << bit))


def flip_bit_float32(x: float, bit: int) -> float:
    """Flip one bit of the binary32 encoding of ``x``."""
    if not 0 <= bit < 32:
        raise ValueError(f"bit {bit} out of range for f32")
    return float32_from_bits(float32_to_bits(x) ^ (1 << bit))


def is_finite(x: float) -> bool:
    """True if ``x`` is neither NaN nor infinite."""
    return math.isfinite(x)


#: Value-kind codes shared with ``Program.flip_info``: how a return value's
#: encoding is interpreted when a fault flips one of its bits.
FLIP_INT = 0
FLIP_F64 = 1
FLIP_F32 = 2


def flip_value(value, bit: int, kind: int, width: int):
    """Flip one bit of an instruction return value — the LLFI fault model.

    This is the single flip-mask construction shared by the scalar
    interpreter and the lockstep batch engine, so both apply *exactly* the
    same corruption for the same (value, bit) coordinate. ``kind`` follows
    :attr:`Program.flip_info` (:data:`FLIP_INT`/:data:`FLIP_F64`/
    :data:`FLIP_F32`); ``bit`` is reduced modulo ``width`` so any sampled
    bit position lands inside the value's encoding.
    """
    b = bit % width
    if kind == FLIP_INT:
        return (value ^ (1 << b)) & ((1 << width) - 1)
    if kind == FLIP_F64:
        return float64_from_bits(float64_to_bits(value) ^ (1 << b))
    return float32_from_bits(float32_to_bits(value) ^ (1 << b))
